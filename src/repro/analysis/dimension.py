"""Flow-sensitive dimension inference over the bandwidth-accounting core.

Every headline number this repository reproduces — the 37.5 GB/s EPYC
root-port ceiling, the ~9 GiB/s chained-write P2P limit, the HFReduce vs
NCCL bandwidth curves — is the output of plain-float arithmetic over
bytes, seconds, FLOPs and counts. A single ``Gbps``-where-``GB/s`` slip
silently corrupts all of them. ``UNIT001`` polices raw magnitude
literals; this module polices the *arithmetic*.

The algebra is a vector of integer exponents over the base dimensions
``(byte, second, flop, count)``:

* ``byte/s``    is ``(1, -1, 0, 0)``,
* ``flop/s``    is ``(0, -1, 1, 0)``,
* ``1/s`` (Hz)  is ``(0, -1, 0, 0)``,
* dimensionless is the zero vector.

Dimensions are seeded from three sources:

1. the :mod:`repro.units` constructors and constants (``gbps(x)`` is
   byte/s, ``us(t)`` is seconds, ``4 * GiB`` is bytes, ...),
2. signature annotations using the zero-cost :mod:`repro.units` aliases
   (``Bytes``, ``Seconds``, ``BytesPerSec``, ``Flops``, ...), read on
   parameters, returns, and dataclass fields,
3. a conservative name-suffix convention: ``*_bytes`` is bytes, ``*_s``
   is seconds, ``*_bps`` is byte/s (plus the idiomatic exact name
   ``nbytes``).

Within each function, dimensions propagate flow-sensitively through
assignments, arithmetic, and calls to same-module (or units) functions
whose signatures are annotated. Numeric literals are *polymorphic
scalars*: they scale in ``*``/``/`` but never participate in an
addition/comparison check, so ``now + 1e-12`` and ``2.0 * latency``
stay silent. Only a contradiction between two *known* dimensions is
reported:

* **DIM001** — ``+``/``-``/comparison (and ``min``/``max``) over
  incompatible dimensions,
* **DIM002** — an argument whose dimension contradicts the callee's
  parameter annotation,
* **DIM003** — a return value whose dimension contradicts the
  function's return annotation.

All three report through the standard lint pipeline: ``# repro:
noqa[DIM001]`` suppressions and ``analysis-baseline.json`` entries work
exactly as for the determinism rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import FileContext, Rule, register

# --- the algebra ------------------------------------------------------------

#: Exponents over (byte, second, flop, count).
DimVec = Tuple[int, int, int, int]

SCALAR: DimVec = (0, 0, 0, 0)
BYTE: DimVec = (1, 0, 0, 0)
SECOND: DimVec = (0, 1, 0, 0)
FLOP: DimVec = (0, 0, 1, 0)
COUNT: DimVec = (0, 0, 0, 1)
BYTES_PER_SEC: DimVec = (1, -1, 0, 0)
FLOPS_PER_SEC: DimVec = (0, -1, 1, 0)
HERTZ: DimVec = (0, -1, 0, 0)

_BASE_NAMES = ("byte", "s", "flop", "count")


def _normalize(byte: int, sec: int, flop: int, count: int) -> DimVec:
    """Count behaves dimensionlessly in products.

    Scaling a physical quantity by a count keeps its dimension
    (``port_rate * ports`` is still byte/s, ``nbytes / chunks`` is still
    bytes), and counts of counts stay counts (``nodes * gpus_per_node``).
    Counts remain a *distinct* dimension for add/sub/compare, which is
    where count-vs-bytes slips actually bite.
    """
    if byte or sec or flop:
        count = 0
    elif count:
        count = 1 if count > 0 else -1
    return (byte, sec, flop, count)


def dim_mul(a: DimVec, b: DimVec) -> DimVec:
    """Dimension of a product."""
    return _normalize(a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3])


def dim_div(a: DimVec, b: DimVec) -> DimVec:
    """Dimension of a quotient."""
    return _normalize(a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3])


def dim_pow(a: DimVec, n: int) -> DimVec:
    """Dimension of an integer power."""
    return _normalize(a[0] * n, a[1] * n, a[2] * n, a[3] * n)


def compatible(a: DimVec, b: DimVec) -> bool:
    """Whether two known dimensions may legally meet in add/compare/bind.

    Counts are physically dimensionless — ``nbytes // chunk_bytes`` is a
    chunk count, ``1.0 + depth / chunks`` is a factor — so count and
    scalar never contradict each other. Everything else must match
    exactly.
    """
    if a == b:
        return True
    return {a, b} == {SCALAR, COUNT}


def dim_name(vec: DimVec) -> str:
    """Human-readable name of a dimension vector (``byte/s``, ``flop``...)."""
    if vec == SCALAR:
        return "scalar"
    num = [
        f"{n}" if e == 1 else f"{n}^{e}"
        for n, e in zip(_BASE_NAMES, vec) if e > 0
    ]
    den = [
        f"{n}" if e == -1 else f"{n}^{-e}"
        for n, e in zip(_BASE_NAMES, vec) if e < 0
    ]
    head = "*".join(num) if num else "1"
    return head + ("/" + "/".join(den) if den else "")


@dataclass(frozen=True)
class Dim:
    """An inferred dimension. ``literal`` marks polymorphic number
    literals, which scale freely and never trigger add/compare checks."""

    vec: DimVec
    literal: bool = False


_LITERAL = Dim(SCALAR, literal=True)


# --- seed tables ------------------------------------------------------------

#: repro.units helper -> (accepted argument dims, return dim). Constructors
#: accept plain scalars (and counts: ``gib(n_buffers)``-style sizing is
#: legitimate); the ``as_*`` formatters demand the canonical dimension.
UNITS_SIGNATURES: Dict[str, Tuple[Tuple[DimVec, ...], DimVec]] = {
    "kib": ((SCALAR, COUNT), BYTE),
    "mib": ((SCALAR, COUNT), BYTE),
    "gib": ((SCALAR, COUNT), BYTE),
    "tib": ((SCALAR, COUNT), BYTE),
    "gbps": ((SCALAR, COUNT), BYTES_PER_SEC),
    "gBps": ((SCALAR, COUNT), BYTES_PER_SEC),
    "giBps": ((SCALAR, COUNT), BYTES_PER_SEC),
    "tBps": ((SCALAR, COUNT), BYTES_PER_SEC),
    "as_gBps": ((BYTES_PER_SEC,), SCALAR),
    "as_giBps": ((BYTES_PER_SEC,), SCALAR),
    "tflops": ((SCALAR, COUNT), FLOPS_PER_SEC),
    "as_tflops": ((FLOPS_PER_SEC,), SCALAR),
    "gflop": ((SCALAR, COUNT), FLOP),
    "mhz": ((SCALAR, COUNT), HERTZ),
    "ghz": ((SCALAR, COUNT), HERTZ),
    "us": ((SCALAR, COUNT), SECOND),
    "ms": ((SCALAR, COUNT), SECOND),
}

#: repro.units module constants.
UNITS_CONSTANTS: Dict[str, DimVec] = {
    "KB": BYTE, "MB": BYTE, "GB": BYTE, "TB": BYTE,
    "KiB": BYTE, "MiB": BYTE, "GiB": BYTE, "TiB": BYTE, "PiB": BYTE,
    "US": SECOND, "MS": SECOND, "MINUTE": SECOND, "HOUR": SECOND,
    "DAY": SECOND,
}

#: Annotation alias -> dimension (the zero-cost aliases in repro.units).
ANNOTATION_DIMS: Dict[str, DimVec] = {
    "Bytes": BYTE,
    "Seconds": SECOND,
    "BytesPerSec": BYTES_PER_SEC,
    "Flops": FLOP,
    "FlopsPerSec": FLOPS_PER_SEC,
    "Hertz": HERTZ,
    "Count": COUNT,
    "Scalar": SCALAR,
}

#: Conservative name-suffix convention for names with no annotation.
SUFFIX_DIMS: Tuple[Tuple[str, DimVec], ...] = (
    ("_bytes", BYTE),
    ("_bps", BYTES_PER_SEC),
    ("_s", SECOND),
)

#: Exact names too idiomatic to leave out of the suffix convention.
EXACT_NAME_DIMS: Dict[str, DimVec] = {
    "nbytes": BYTE,
}

#: Builtins whose result carries their argument's dimension.
_PASS_THROUGH_BUILTINS = frozenset({"abs", "float", "round"})
#: Builtins that compare their arguments (DIM001 on a known mismatch).
_COMPARING_BUILTINS = frozenset({"min", "max"})


def suffix_dim(name: str) -> Optional[DimVec]:
    """Dimension implied by a bare name, or None."""
    exact = EXACT_NAME_DIMS.get(name)
    if exact is not None:
        return exact
    for suffix, vec in SUFFIX_DIMS:
        if name.endswith(suffix) and len(name) > len(suffix):
            return vec
    return None


def annotation_dim(node: Optional[ast.AST]) -> Optional[DimVec]:
    """Dimension named by an annotation expression, or None.

    Recognizes the bare alias (``Bytes``), the qualified form
    (``units.Bytes``), string annotations, and ``Optional[X]`` /
    ``X | None`` wrappers around any of those.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return ANNOTATION_DIMS.get(node.id)
    if isinstance(node, ast.Attribute):
        return ANNOTATION_DIMS.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ANNOTATION_DIMS.get(node.value.rsplit(".", 1)[-1])
    if isinstance(node, ast.Subscript):
        base = node.value
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if name == "Optional":
            return annotation_dim(node.slice)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_dim(node.left)
        if left is not None:
            return left
        return annotation_dim(node.right)
    return None


# --- module-level tables -----------------------------------------------------


@dataclass
class Signature:
    """Dimension-relevant view of one function definition."""

    name: str
    params: List[Tuple[str, Optional[DimVec]]]
    returns: Optional[DimVec]
    node: ast.AST

    @property
    def annotated(self) -> bool:
        """Whether any part of the signature carries a dimension."""
        return self.returns is not None or any(
            d is not None for _, d in self.params
        )

    def param_dim(self, index: int, keyword: Optional[str]) -> Tuple[str, Optional[DimVec]]:
        """(name, dim) of the parameter an argument binds to."""
        if keyword is not None:
            for pname, d in self.params:
                if pname == keyword:
                    return pname, d
            return keyword, None
        if 0 <= index < len(self.params):
            return self.params[index]
        return f"arg{index}", None


_CONFLICT = object()


class ModuleTables:
    """Signatures, attribute dims, and module globals for one file."""

    def __init__(self, ctx: FileContext) -> None:
        self.functions: Dict[str, Signature] = {}
        self.methods: Dict[str, Dict[str, Signature]] = {}  # class -> name -> sig
        #: Attribute name -> dim, from class-body AnnAssign (dataclass
        #: fields) and annotated property returns. Conflicting
        #: declarations across classes drop the name entirely.
        self.attr_dims: Dict[str, object] = {}
        #: Local alias -> units helper name, for imported constructors.
        self.units_funcs: Dict[str, str] = {}
        #: Local alias -> units constant dim.
        self.units_consts: Dict[str, DimVec] = {}
        #: Local names bound to the repro.units module itself.
        self.units_modules: Set[str] = set()
        self._collect_imports(ctx.tree)
        self._collect_defs(ctx.tree)

    # -- construction ------------------------------------------------------

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in ("repro.units", "units"):
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if alias.name in UNITS_SIGNATURES:
                            self.units_funcs[local] = alias.name
                        elif alias.name in UNITS_CONSTANTS:
                            self.units_consts[local] = UNITS_CONSTANTS[alias.name]
                elif node.module == "repro":
                    for alias in node.names:
                        if alias.name == "units":
                            self.units_modules.add(alias.asname or "units")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.units":
                        self.units_modules.add(alias.asname or "repro")

    def _signature(self, fn: ast.AST) -> Signature:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        params: List[Tuple[str, Optional[DimVec]]] = []
        args = fn.args
        for a in args.posonlyargs + args.args:
            dim = annotation_dim(a.annotation)
            if dim is None:
                dim = suffix_dim(a.arg)
            params.append((a.arg, dim))
        for a in args.kwonlyargs:
            dim = annotation_dim(a.annotation)
            if dim is None:
                dim = suffix_dim(a.arg)
            params.append((a.arg, dim))
        return Signature(
            name=fn.name,
            params=params,
            returns=annotation_dim(fn.returns),
            node=fn,
        )

    def _record_attr(self, name: str, dim: Optional[DimVec]) -> None:
        if dim is None:
            return
        seen = self.attr_dims.get(name)
        if seen is None:
            self.attr_dims[name] = dim
        elif seen is not _CONFLICT and seen != dim:
            self.attr_dims[name] = _CONFLICT

    def _collect_defs(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = self._signature(node)
            elif isinstance(node, ast.ClassDef):
                methods: Dict[str, Signature] = {}
                for item in node.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        self._record_attr(
                            item.target.id, annotation_dim(item.annotation)
                        )
                    elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        sig = self._signature(item)
                        methods[item.name] = sig
                        if any(
                            isinstance(d, ast.Name) and d.id == "property"
                            for d in item.decorator_list
                        ):
                            # Property reads look like attribute access.
                            self._record_attr(item.name, sig.returns)
                self.methods[node.name] = methods
        # A method name unique across the module's classes resolves even
        # through a receiver of unknown class.
        self._method_by_name: Dict[str, object] = {}
        for methods in self.methods.values():
            for name, sig in methods.items():
                seen = self._method_by_name.get(name)
                if seen is None:
                    self._method_by_name[name] = sig
                elif isinstance(seen, Signature) and (
                    seen.params != sig.params or seen.returns != sig.returns
                ):
                    self._method_by_name[name] = _CONFLICT

    # -- lookups -----------------------------------------------------------

    def attr_dim(self, name: str) -> Optional[DimVec]:
        """Dimension of an attribute by declared field/property, else suffix."""
        seen = self.attr_dims.get(name)
        if seen is _CONFLICT:
            return None
        if seen is not None:
            return seen  # type: ignore[return-value]
        return suffix_dim(name)

    def method(self, name: str) -> Optional[Signature]:
        """A module-wide unique method by name, or None."""
        sig = self._method_by_name.get(name)
        return sig if isinstance(sig, Signature) else None


# --- the flow-sensitive pass -------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One dimension diagnostic, tagged with its rule code."""

    code: str
    line: int
    col: int
    message: str


class _FunctionPass:
    """Infers dimensions through one function body, in statement order.

    ``env`` maps local names to known dimension vectors; absent names are
    unknown. Branches are analysed on copies and merged: a name whose
    branches disagree becomes unknown, so only flow-certain knowledge
    survives — the pass prefers silence over speculation.
    """

    def __init__(
        self,
        tables: ModuleTables,
        module_env: Dict[str, DimVec],
        fn: ast.AST,
        enclosing_class: Optional[str],
        findings: List[Finding],
    ) -> None:
        self.tables = tables
        self.module_env = module_env
        self.fn = fn
        self.enclosing_class = enclosing_class
        self.findings = findings
        self.sig = tables._signature(fn)
        self.env: Dict[str, DimVec] = {}
        for name, dim in self.sig.params:
            if dim is not None:
                self.env[name] = dim

    # -- entry -------------------------------------------------------------

    def run(self) -> None:
        assert isinstance(self.fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._exec_body(self.fn.body)

    # -- statements --------------------------------------------------------

    def _exec_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _merge(self, *envs: Dict[str, DimVec]) -> None:
        """Replace ``self.env`` with the agreement of branch environments."""
        merged: Dict[str, DimVec] = {}
        first, rest = envs[0], envs[1:]
        for name, dim in first.items():
            if all(e.get(name) == dim for e in rest):
                merged[name] = dim
        self.env = merged

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            dim = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, dim)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_dim(stmt.annotation)
            if stmt.value is not None:
                value = self.infer(stmt.value)
                if (
                    declared is not None
                    and value is not None
                    and not value.literal
                    and not compatible(value.vec, declared)
                ):
                    self._report(
                        "DIM001", stmt,
                        f"assignment of {dim_name(value.vec)} to a name "
                        f"annotated {dim_name(declared)}",
                    )
            if isinstance(stmt.target, ast.Name):
                if declared is not None:
                    self.env[stmt.target.id] = declared
                else:
                    self._bind(stmt.target, self.infer(stmt.value)
                               if stmt.value is not None else None)
        elif isinstance(stmt, ast.AugAssign):
            target_dim = self._read_target(stmt.target)
            value = self.infer(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_additive(stmt, target_dim, value, "+=/-=")
            elif isinstance(stmt.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                combined = self._combine_mul_div(target_dim, value, stmt.op)
                self._bind(stmt.target, combined)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test)
            before = dict(self.env)
            self._exec_body(stmt.body)
            then_env = self.env
            self.env = dict(before)
            self._exec_body(stmt.orelse)
            self._merge(then_env, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.infer(stmt.iter)
            self._bind(stmt.target, None)
            before = dict(self.env)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
            self._merge(before, self.env)
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test)
            before = dict(self.env)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
            self._merge(before, self.env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None)
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self._exec_body(stmt.body)
            body_env = self.env
            handler_envs = []
            for handler in stmt.handlers:
                self.env = dict(before)
                self._exec_body(handler.body)
                handler_envs.append(self.env)
            self._merge(body_env, *handler_envs) if handler_envs else None
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes are analysed separately (functions) or not
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.infer(child)
        # Remaining statements (pass, break, import, del, ...) carry no dims.

    def _bind(self, target: ast.AST, dim: Optional[Dim]) -> None:
        if isinstance(target, ast.Name):
            if dim is not None and not dim.literal:
                self.env[target.id] = dim.vec
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None)
        # Attribute/subscript targets: no local binding.

    def _read_target(self, target: ast.AST) -> Optional[Dim]:
        if isinstance(target, (ast.Name, ast.Attribute)):
            return self.infer(target)
        return None

    def _check_return(self, stmt: ast.Return) -> None:
        declared = self.sig.returns
        if stmt.value is None:
            return
        value = self.infer(stmt.value)
        if (
            declared is not None
            and value is not None
            and not value.literal
            and not compatible(value.vec, declared)
        ):
            self._report(
                "DIM003", stmt,
                f"return of {self.sig.name}() is {dim_name(value.vec)} but "
                f"the signature declares {dim_name(declared)}",
            )

    # -- expressions -------------------------------------------------------

    def infer(self, node: Optional[ast.AST]) -> Optional[Dim]:
        """Dimension of an expression, visiting children for checks."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return _LITERAL
        if isinstance(node, ast.Name):
            vec = self.env.get(node.id)
            if vec is None:
                vec = self.module_env.get(node.id)
            if vec is None:
                vec = self.tables.units_consts.get(node.id)
            if vec is None and node.id not in self.env:
                vec = suffix_dim(node.id)
            return Dim(vec) if vec is not None else None
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            # units.GiB / repro.units.GiB qualified constants.
            base = node.value
            if isinstance(base, ast.Name) and base.id in self.tables.units_modules:
                const = UNITS_CONSTANTS.get(node.attr)
                if const is not None:
                    return Dim(const)
            vec = self.tables.attr_dim(node.attr)
            return Dim(vec) if vec is not None else None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Compare):
            self._infer_compare(node)
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            a = self.infer(node.body)
            b = self.infer(node.orelse)
            if a is not None and b is not None and a.vec == b.vec:
                return Dim(a.vec, literal=a.literal and b.literal)
            if a is not None and b is not None and not a.literal and not b.literal:
                # Both branches known but contradictory: a conditional
                # expression yields one or the other, so flag it.
                self._report(
                    "DIM001", node,
                    f"conditional expression mixes {dim_name(a.vec)} and "
                    f"{dim_name(b.vec)} branches",
                )
            return None
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.infer(v)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.infer(elt)
            return None
        if isinstance(node, ast.Dict):
            for k in node.keys:
                self.infer(k)
            for v in node.values:
                self.infer(v)
            return None
        if isinstance(node, ast.Subscript):
            self.infer(node.value)
            self.infer(node.slice)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            # Comprehension scopes are isolated; visit for nested checks
            # without polluting the environment.
            saved = dict(self.env)
            for gen in node.generators:
                self.infer(gen.iter)
                self._bind(gen.target, None)
                for cond in gen.ifs:
                    self.infer(cond)
            if isinstance(node, ast.DictComp):
                self.infer(node.key)
                self.infer(node.value)
            else:
                self.infer(node.elt)
            self.env = saved
            return None
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom, ast.Starred)):
            child = getattr(node, "value", None)
            if child is not None:
                self.infer(child)
            return None
        if isinstance(node, ast.Lambda):
            return None
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self.infer(v.value)
            return None
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[Dim]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            return self._check_additive(node, left, right,
                                        "+" if isinstance(op, ast.Add) else "-")
        if isinstance(op, (ast.Mult, ast.Div, ast.FloorDiv)):
            return self._combine_mul_div(left, right, op)
        if isinstance(op, ast.Pow):
            if (
                left is not None and not left.literal
                and isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)
            ):
                return Dim(dim_pow(left.vec, node.right.value))
            return None
        return None

    @staticmethod
    def _combine_mul_div(
        left: Optional[Dim], right: Optional[Dim], op: ast.operator
    ) -> Optional[Dim]:
        if left is None or right is None:
            return None
        if isinstance(op, ast.Mult):
            return Dim(dim_mul(left.vec, right.vec),
                       literal=left.literal and right.literal)
        return Dim(dim_div(left.vec, right.vec),
                   literal=left.literal and right.literal)

    def _check_additive(
        self,
        node: ast.AST,
        left: Optional[Dim],
        right: Optional[Dim],
        op: str,
    ) -> Optional[Dim]:
        if left is None or left.literal:
            return right if right is not None and not right.literal else None
        if right is None or right.literal:
            return left
        if not compatible(left.vec, right.vec):
            self._report(
                "DIM001", node,
                f"'{op}' combines {dim_name(left.vec)} with "
                f"{dim_name(right.vec)}; operands must share a dimension",
            )
            return None
        return left

    def _infer_compare(self, node: ast.Compare) -> None:
        dims = [self.infer(node.left)] + [self.infer(c) for c in node.comparators]
        ops = node.ops
        for i, op in enumerate(ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            a, b = dims[i], dims[i + 1]
            if (
                a is not None and b is not None
                and not a.literal and not b.literal
                and not compatible(a.vec, b.vec)
            ):
                self._report(
                    "DIM001", node,
                    f"comparison of {dim_name(a.vec)} against "
                    f"{dim_name(b.vec)}; both sides must share a dimension",
                )

    # -- calls -------------------------------------------------------------

    def _resolve_callee(self, func: ast.AST) -> Optional[Tuple[str, object]]:
        """(display name, Signature | units-name) for a resolvable call."""
        if isinstance(func, ast.Name):
            units_name = self.tables.units_funcs.get(func.id)
            if units_name is not None:
                return units_name, units_name
            sig = self.tables.functions.get(func.id)
            if sig is not None:
                return func.id, sig
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in self.tables.units_modules:
                if func.attr in UNITS_SIGNATURES:
                    return func.attr, func.attr
                return None
            if isinstance(base, ast.Name) and base.id == "self":
                cls = self.enclosing_class
                if cls is not None:
                    sig = self.tables.methods.get(cls, {}).get(func.attr)
                    if sig is not None:
                        return f"self.{func.attr}", self._drop_self(sig)
                return None
            sig = self.tables.method(func.attr)
            if sig is not None:
                return func.attr, self._drop_self(sig)
        return None

    @staticmethod
    def _drop_self(sig: Signature) -> Signature:
        params = sig.params
        if params and params[0][0] in ("self", "cls"):
            params = params[1:]
        return Signature(sig.name, params, sig.returns, sig.node)

    def _infer_call(self, node: ast.Call) -> Optional[Dim]:
        func = node.func
        # Builtins with dimension behaviour.
        if isinstance(func, ast.Name) and func.id in _PASS_THROUGH_BUILTINS:
            dims = [self.infer(a) for a in node.args]
            return dims[0] if dims else None
        if isinstance(func, ast.Name) and func.id in _COMPARING_BUILTINS:
            dims = [self.infer(a) for a in node.args]
            known = [d for d in dims if d is not None and not d.literal]
            if len(node.args) >= 2:
                for d in known[1:]:
                    if not compatible(d.vec, known[0].vec):
                        self._report(
                            "DIM001", node,
                            f"{func.id}() over {dim_name(known[0].vec)} and "
                            f"{dim_name(d.vec)}; arguments must share a "
                            "dimension",
                        )
                        return None
            for kw in node.keywords:
                self.infer(kw.value)
            return known[0] if known else None

        resolved = self._resolve_callee(func)
        if resolved is None:
            # Still visit arguments (and the receiver) for nested checks.
            self.infer(func) if isinstance(func, ast.Attribute) else None
            for a in node.args:
                self.infer(a)
            for kw in node.keywords:
                self.infer(kw.value)
            return None

        display, target = resolved
        if isinstance(target, str):  # units helper
            accepted, returns = UNITS_SIGNATURES[target]
            for i, arg in enumerate(node.args):
                dim = self.infer(arg)
                if (
                    i == 0 and dim is not None and not dim.literal
                    and not any(compatible(dim.vec, a) for a in accepted)
                ):
                    self._report(
                        "DIM002", arg,
                        f"argument to units.{display}() is "
                        f"{dim_name(dim.vec)}; the constructor expects a "
                        "plain scalar magnitude",
                    )
            for kw in node.keywords:
                self.infer(kw.value)
            return Dim(returns)

        sig = target
        assert isinstance(sig, Signature)
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self.infer(arg)
                continue
            dim = self.infer(arg)
            pname, expected = sig.param_dim(i, None)
            self._check_arg(display, pname, expected, dim, arg)
        for kw in node.keywords:
            dim = self.infer(kw.value)
            if kw.arg is None:
                continue
            pname, expected = sig.param_dim(-1, kw.arg)
            self._check_arg(display, pname, expected, dim, kw.value)
        return Dim(sig.returns) if sig.returns is not None else None

    def _check_arg(
        self,
        display: str,
        pname: str,
        expected: Optional[DimVec],
        dim: Optional[Dim],
        node: ast.AST,
    ) -> None:
        if (
            expected is not None
            and dim is not None
            and not dim.literal
            and not compatible(dim.vec, expected)
        ):
            self._report(
                "DIM002", node,
                f"argument '{pname}' to {display}() is "
                f"{dim_name(dim.vec)} but the signature declares "
                f"{dim_name(expected)}",
            )

    def _report(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(code, getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0), message)
        )


# --- module driver -----------------------------------------------------------


def _module_env(tables: ModuleTables, tree: ast.Module) -> Dict[str, DimVec]:
    """Dims of module-level constants (``XGMI_BW = gBps(70.0)``...)."""
    env: Dict[str, DimVec] = {}
    sink: List[Finding] = []
    probe = _FunctionPass.__new__(_FunctionPass)
    probe.tables = tables
    probe.module_env = env
    probe.enclosing_class = None
    probe.findings = sink
    probe.env = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            dim = probe.infer(stmt.value)
            if dim is not None and not dim.literal:
                env[stmt.targets[0].id] = dim.vec
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            declared = annotation_dim(stmt.annotation)
            if declared is not None:
                env[stmt.target.id] = declared
    return env


def analyze_module(ctx: FileContext) -> List[Finding]:
    """All DIM findings for one parsed file (cached on the context)."""
    cached = getattr(ctx, "_dim_findings", None)
    if cached is not None:
        return cached
    tables = ModuleTables(ctx)
    module_env = _module_env(tables, ctx.tree)
    findings: List[Finding] = []

    def visit_functions(body, enclosing_class):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionPass(
                    tables, module_env, node, enclosing_class, findings
                ).run()
            elif isinstance(node, ast.ClassDef):
                visit_functions(node.body, node.name)

    visit_functions(ctx.tree.body, None)
    # Module-level expressions (constant definitions) also get checks.
    probe = _FunctionPass.__new__(_FunctionPass)
    probe.tables = tables
    probe.module_env = module_env
    probe.enclosing_class = None
    probe.findings = findings
    probe.env = {}
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.Assign, ast.Expr)):
            probe.infer(stmt.value)
    ctx._dim_findings = findings  # type: ignore[attr-defined]
    return findings


#: The packages whose arithmetic the dimension pass audits — the
#: bandwidth-accounting core plus the scale-up planners built on it.
DIM_PACKAGES: Tuple[str, ...] = (
    "hardware", "network", "collectives", "fs3", "haiscale", "units.py",
)


class _DimRule(Rule):
    """Shared driver: each subclass filters one code out of the analysis."""

    applies_to = DIM_PACKAGES

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        for finding in analyze_module(ctx):
            if finding.code == self.code:
                yield finding.line, finding.col, finding.message


@register
class DimAdditiveRule(_DimRule):
    """DIM001 — additive/comparison mixing of incompatible dimensions."""

    code = "DIM001"
    title = (
        "add/sub/compare over incompatible dimensions (byte vs s vs "
        "byte/s ...); unit arithmetic must stay dimensionally consistent"
    )


@register
class DimArgumentRule(_DimRule):
    """DIM002 — argument dimension contradicts the callee's annotation."""

    code = "DIM002"
    title = (
        "call argument whose inferred dimension contradicts the callee's "
        "annotated parameter dimension (units aliases / suffix convention)"
    )


@register
class DimReturnRule(_DimRule):
    """DIM003 — return dimension contradicts the function's annotation."""

    code = "DIM003"
    title = (
        "return value whose inferred dimension contradicts the "
        "function's annotated return dimension"
    )


# --- annotation census (used by tests and docs) ------------------------------


def annotated_signatures(tree: ast.Module) -> List[str]:
    """Names of functions whose signature carries >= 1 dimension annotation.

    Only alias-based annotations count (the suffix convention is implicit
    and free); this is the census the acceptance test runs over the
    annotated packages.
    """
    out: List[str] = []

    def visit(body, prefix):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                has = annotation_dim(node.returns) is not None or any(
                    annotation_dim(a.annotation) is not None
                    for a in (node.args.posonlyargs + node.args.args
                              + node.args.kwonlyargs)
                )
                if has:
                    out.append(prefix + node.name)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, prefix + node.name + ".")

    visit(tree.body, "")
    return out
