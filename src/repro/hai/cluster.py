"""Cluster state: tagged whole-node resources across two zones."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import SchedulerError


@dataclass
class NodeInfo:
    """One compute node as the scheduler sees it."""

    name: str
    zone: int
    tags: FrozenSet[str] = frozenset()
    healthy: bool = True
    running_task: Optional[str] = None

    @property
    def free(self) -> bool:
        """Available for allocation."""
        return self.healthy and self.running_task is None


class HAICluster:
    """Node registry with zone/tag classification (no GPU pooling)."""

    def __init__(self) -> None:
        self._nodes: Dict[str, NodeInfo] = {}

    @classmethod
    def two_zone(cls, nodes_per_zone: int, tags: Set[str] = frozenset()) -> "HAICluster":
        """Standard Fire-Flyer layout: two equal zones."""
        cluster = cls()
        for z in (0, 1):
            for i in range(nodes_per_zone):
                cluster.add_node(f"z{z}n{i}", zone=z, tags=tags)
        return cluster

    def add_node(self, name: str, zone: int, tags: Set[str] = frozenset()) -> None:
        """Register a node."""
        if name in self._nodes:
            raise SchedulerError(f"duplicate node {name!r}")
        self._nodes[name] = NodeInfo(name=name, zone=zone, tags=frozenset(tags))

    def node(self, name: str) -> NodeInfo:
        """Look up a node."""
        try:
            return self._nodes[name]
        except KeyError:
            raise SchedulerError(f"unknown node {name!r}")

    def nodes(self) -> List[NodeInfo]:
        """All nodes, sorted by name."""
        return [self._nodes[k] for k in sorted(self._nodes)]

    def free_nodes(self, zone: Optional[int] = None, tags: Set[str] = frozenset()) -> List[NodeInfo]:
        """Free healthy nodes, filtered by zone and required tags."""
        out = []
        for n in self.nodes():
            if not n.free:
                continue
            if zone is not None and n.zone != zone:
                continue
            if tags and not tags <= n.tags:
                continue
            out.append(n)
        return out

    def allocate(self, names: List[str], task_id: str) -> None:
        """Mark nodes as running a task."""
        for name in names:
            info = self.node(name)
            if not info.free:
                raise SchedulerError(f"node {name!r} is not free")
        for name in names:
            self._nodes[name].running_task = task_id

    def release(self, task_id: str) -> List[str]:
        """Free every node running ``task_id``; returns their names."""
        released = []
        for n in self._nodes.values():
            if n.running_task == task_id:
                n.running_task = None
                released.append(n.name)
        return sorted(released)

    def mark_unhealthy(self, name: str) -> Optional[str]:
        """Take a node out of scheduling (validator found a fault).

        Returns the task that was running there, if any.
        """
        info = self.node(name)
        info.healthy = False
        victim = info.running_task
        info.running_task = None
        return victim

    def mark_healthy(self, name: str) -> None:
        """Return a repaired node to the pool."""
        self.node(name).healthy = True

    @property
    def size(self) -> int:
        """Total registered nodes."""
        return len(self._nodes)

    def busy_count(self) -> int:
        """Nodes currently running tasks."""
        return sum(1 for n in self._nodes.values() if n.running_task is not None)
