"""The time-sharing scheduler (Section VI-C).

An event-driven scheduler over :class:`~repro.hai.cluster.HAICluster`:

* tasks are allocated whole nodes, preferring a single zone;
* a task that cannot fit in one zone may span both, but only **one**
  cross-zone task may run at a time (Section III-B);
* higher-priority arrivals preempt the lowest-priority running tasks via
  the checkpoint-interrupt protocol (no work lost, bounded overhead);
* node failures crash their task, which loses at most one checkpoint
  interval of progress and re-queues;
* busy node-seconds are accumulated for utilization reporting.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import telemetry
from repro.errors import SchedulerError
from repro.faults import FaultEvent, FaultPlan
from repro.hai.cluster import HAICluster, NodeInfo
from repro.hai.task import Task, TaskState


@dataclass(frozen=True)
class SchedulerEvent:
    """One recorded scheduling decision."""

    time: float
    kind: str  # submit | start | finish | preempt | crash | requeue
    task_id: str
    detail: str = ""


class TimeSharingScheduler:
    """Deterministic event-driven time-sharing scheduler."""

    def __init__(self, cluster: HAICluster) -> None:
        self.cluster = cluster
        self.tasks: Dict[str, Task] = {}
        self._submit_order: Dict[str, int] = {}
        self._counter = 0
        self.now = 0.0
        self.events: List[SchedulerEvent] = []
        self._busy_node_seconds = 0.0
        self._clock_started = 0.0
        #: task_id -> time its nodes become usable (checkpoint overheads).
        self._warmup_until: Dict[str, float] = {}
        #: Nodes held out of the pool by health monitoring (see drain_node).
        self.drained: Set[str] = set()
        #: Nodes down with an unrepaired hardware fault (see fail_node).
        #: Tracked separately from ``drained`` so repair and undrain each
        #: clear only their own reason for exclusion.
        self._failed: Set[str] = set()
        # Telemetry: the open queued/run span per task, valid for one
        # session (invalidated if a different session becomes active).
        self._tele_spans: Dict[str, object] = {}
        self._tele_sess: Optional[object] = None

    # -- submission -----------------------------------------------------------

    def submit(self, task: Task, now: Optional[float] = None) -> None:
        """Enqueue a task."""
        if task.task_id in self.tasks:
            raise SchedulerError(f"duplicate task {task.task_id!r}")
        if task.nodes_required > self.cluster.size:
            raise SchedulerError(
                f"{task.task_id}: needs {task.nodes_required} nodes, cluster "
                f"has {self.cluster.size}"
            )
        if now is not None:
            self._advance_to(now)
        self.tasks[task.task_id] = task
        self._submit_order[task.task_id] = self._counter
        self._counter += 1
        self._log("submit", task.task_id)
        self._schedule()

    # -- queries ---------------------------------------------------------------

    def running_tasks(self) -> List[Task]:
        """Tasks currently holding nodes."""
        return sorted(
            (t for t in self.tasks.values() if t.state is TaskState.RUNNING),
            key=lambda t: t.task_id,
        )

    def waiting_tasks(self) -> List[Task]:
        """Tasks queued or interrupted, in scheduling priority order."""
        waiting = [
            t
            for t in self.tasks.values()
            if t.state in (TaskState.QUEUED, TaskState.INTERRUPTED)
        ]
        waiting.sort(key=lambda t: (-t.priority, self._submit_order[t.task_id]))
        return waiting

    def cross_zone_task(self) -> Optional[Task]:
        """The currently running cross-zone task, if any."""
        for t in self.running_tasks():
            zones = {self.cluster.node(n).zone for n in t.assigned_nodes}
            if len(zones) > 1:
                return t
        return None

    def utilization(self) -> float:
        """Busy node-seconds / total node-seconds since time zero."""
        elapsed = self.now - self._clock_started
        if elapsed <= 0:
            return 0.0
        return self._busy_node_seconds / (elapsed * self.cluster.size)

    # -- time advancement -------------------------------------------------------

    def _advance_to(self, t: float) -> None:
        if t < self.now:
            raise SchedulerError(f"time went backwards: {t} < {self.now}")
        dt = t - self.now
        if dt == 0:
            return
        for task in self.running_tasks():
            usable_from = self._warmup_until.get(task.task_id, 0.0)
            effective = max(0.0, t - max(self.now, usable_from))
            if effective > 0:
                task.advance(effective)
        self._busy_node_seconds += self.cluster.busy_count() * dt
        self.now = t

    def _next_completion(self) -> Optional[Tuple[float, Task]]:
        best: Optional[Tuple[float, Task]] = None
        for task in self.running_tasks():
            usable_from = max(self._warmup_until.get(task.task_id, 0.0), self.now)
            eta = usable_from + task.remaining_work
            if best is None or eta < best[0]:
                best = (eta, task)
        return best

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation until ``until`` (or until idle)."""
        while True:
            nxt = self._next_completion()
            if nxt is None:
                if until is not None and until > self.now:
                    self._advance_to(until)
                return
            eta, task = nxt
            if until is not None and eta > until:
                self._advance_to(until)
                return
            self._advance_to(eta)
            self._finish(task)
            self._schedule()

    def run_until_idle(self) -> None:
        """Run until no task is running or waiting."""
        guard = 0
        while self.running_tasks() or self.waiting_tasks():
            before = self.now
            self.run()
            self._schedule()
            guard += 1
            if guard > 100000 or (not self.running_tasks() and self.waiting_tasks()):
                raise SchedulerError("scheduler stalled with waiting tasks")

    # -- failures ----------------------------------------------------------------

    def fail_node(self, name: str, now: Optional[float] = None) -> Optional[str]:
        """A node fails: its task crashes (bounded loss) and re-queues."""
        if now is not None:
            self._advance_to(now)
        self._failed.add(name)
        victim_id = self.cluster.mark_unhealthy(name)
        if victim_id is None:
            self._schedule()
            return None
        task = self.tasks[victim_id]
        self.cluster.release(victim_id)
        lost = task.crash()
        self._log("crash", victim_id, f"node={name} lost={lost:.1f}s")
        self._schedule()
        return victim_id

    def repair_node(self, name: str, now: Optional[float] = None) -> None:
        """A repaired node rejoins the pool.

        A repair clears only the *failure*: if health monitoring drained
        the node in the meantime, it stays out of the pool until the
        alert resolves. Marking it healthy unconditionally would let the
        fault-replay repair path silently undo a monitor conviction —
        the outcome of a chaos run would then depend on the interleaving
        of repairs and drains rather than on either signal.
        """
        if now is not None:
            self._advance_to(now)
        self._failed.discard(name)
        if name not in self.drained:
            self.cluster.mark_healthy(name)
        self._schedule()

    # -- health-driven drains (Section VII validator / monitor closed loop) -------

    def drain_node(
        self, name: str, now: Optional[float] = None, reason: str = ""
    ) -> Optional[str]:
        """Remove a suspect node from the pool *gracefully*.

        Unlike :meth:`fail_node` — the node is still up, just convicted
        by health monitoring — the resident task checkpoint-interrupts
        (no work lost beyond the save overhead) and re-queues. Returns
        the displaced task id, if any. Idempotent while drained.
        """
        if now is not None:
            self._advance_to(now)
        if name in self.drained:
            return None
        self.drained.add(name)
        victim_id = self.cluster.mark_unhealthy(name)
        if victim_id is None:
            self._log("drain", name, reason)
            self._schedule()
            return None
        task = self.tasks[victim_id]
        overhead = task.interrupt()
        self.cluster.release(victim_id)
        self._warmup_until.pop(victim_id, None)
        detail = f"node={name} save={overhead:.0f}s"
        if reason:
            detail += f" {reason}"
        self._log("drain", victim_id, detail)
        self._schedule()
        return victim_id

    def undrain_node(self, name: str, now: Optional[float] = None) -> None:
        """Return a drained node to the pool (no-op if not drained).

        Symmetric with :meth:`repair_node`: undraining clears only the
        conviction. A node that failed while drained and has not been
        repaired yet stays out of the pool — otherwise an alert resolving
        after a crash would resurrect a dead node.
        """
        if now is not None:
            self._advance_to(now)
        if name not in self.drained:
            return
        self.drained.discard(name)
        if name not in self._failed:
            self.cluster.mark_healthy(name)
        self._log("undrain", name)
        self._schedule()

    #: Plan kinds that take a compute node out of the pool.
    FAULT_KINDS = ("gpu_xid", "ecc_error", "nic_down", "host_hang")

    def inject_faults(
        self,
        plan: FaultPlan,
        repair_after: float = 600.0,
        node_for=None,
    ) -> Dict[str, float]:
        """Replay a fault plan through the checkpoint-interrupt protocol.

        Every node-affecting event (:attr:`FAULT_KINDS`) is mapped onto a
        cluster node — deterministically by hashing the plan's node label,
        or via the ``node_for(event)`` callable — which crashes its task
        (losing at most one checkpoint interval) and re-queues it; the
        node rejoins after ``repair_after`` seconds (``host_hang`` clears
        after its own duration, matching hostping auto-recovery).

        Returns crash→requeue-start recovery times observed within the
        replay horizon, keyed ``"<event_id>:<task_id>"``; each is also
        recorded as ``recovery_time_s{layer="scheduler"}``.
        """
        names = sorted(n.name for n in self.cluster.nodes())
        if not names:
            raise SchedulerError("cannot inject faults into an empty cluster")

        def default_map(event: FaultEvent) -> str:
            return names[zlib.crc32(event.node.encode("utf-8")) % len(names)]

        mapper = node_for if node_for is not None else default_map
        sess = telemetry.session()

        # (time, phase, seq, node, event): phase 0 = fail, 1 = repair;
        # seq makes the heap order total so events never get compared.
        timeline: List[Tuple[float, int, int, str, Optional[FaultEvent]]] = []
        seq = 0
        for event in plan.of_kind(*self.FAULT_KINDS):
            heapq.heappush(timeline, (event.time, 0, seq, mapper(event), event))
            seq += 1
        crashes: List[Tuple[float, str, FaultEvent]] = []
        while timeline:
            t, phase, _seq, name, event = heapq.heappop(timeline)
            if t > self.now:
                self.run(until=t)  # drain completions due before the fault
            if phase == 0:
                assert event is not None
                victim = self.fail_node(name, now=t)
                back = event.duration if event.kind == "host_hang" else repair_after
                heapq.heappush(timeline, (t + back, 1, seq, name, None))
                seq += 1
                if victim is not None:
                    crashes.append((t, victim, event))
                if sess is not None:
                    sess.registry.counter(
                        "faults_injected", kind=event.kind
                    ).inc()
                    if sess.tracer is not None:
                        sess.tracer.instant(
                            f"fault:{event.kind}", t, track="faults/scheduler",
                            cat="faults",
                            args={"node": name, "victim": victim or ""},
                        )
            else:
                self.repair_node(name, now=t)

        # Match each crash to the next requeue-start of the same task.
        recovery: Dict[str, float] = {}
        cursor: Dict[str, int] = {}
        for t, task_id, event in crashes:
            for idx in range(cursor.get(task_id, 0), len(self.events)):
                ev = self.events[idx]
                if (ev.task_id == task_id and ev.time >= t
                        and ev.kind == "requeue-start"):
                    dt = ev.time - t
                    recovery[f"{event.event_id}:{task_id}"] = dt
                    cursor[task_id] = idx + 1
                    if sess is not None:
                        sess.registry.histogram(
                            "recovery_time_s", layer="scheduler"
                        ).observe(dt)
                    break
        return recovery

    # -- core policy --------------------------------------------------------------

    def _finish(self, task: Task) -> None:
        task.state = TaskState.FINISHED
        task.finished_at = self.now
        self.cluster.release(task.task_id)
        self._warmup_until.pop(task.task_id, None)
        self._log("finish", task.task_id)

    def _pick_nodes(self, task: Task) -> Optional[List[str]]:
        """Choose nodes for a task honouring zone policy; None if impossible."""
        all_zones = sorted({n.zone for n in self.cluster.nodes()})
        zones = [task.zone] if task.zone is not None else all_zones
        for z in zones:
            free = self.cluster.free_nodes(zone=z)
            if len(free) >= task.nodes_required:
                return [n.name for n in free[: task.nodes_required]]
        if task.zone is None and self.cross_zone_task() is None:
            free = self.cluster.free_nodes()
            if len(free) >= task.nodes_required:
                return [n.name for n in free[: task.nodes_required]]
        return None

    def _preemption_candidates(self, prio: int) -> List[Task]:
        victims = [t for t in self.running_tasks() if t.priority < prio]
        victims.sort(key=lambda t: (t.priority, -self._submit_order[t.task_id]))
        return victims

    def _schedule(self) -> None:
        for task in self.waiting_tasks():
            nodes = self._pick_nodes(task)
            if nodes is None:
                # Try preempting lower-priority work.
                freed = 0
                plan: List[Task] = []
                for victim in self._preemption_candidates(task.priority):
                    plan.append(victim)
                    freed += len(victim.assigned_nodes)
                    if freed + len(self.cluster.free_nodes()) >= task.nodes_required:
                        break
                if freed + len(self.cluster.free_nodes()) < task.nodes_required:
                    continue  # cannot start this task now
                for victim in plan:
                    overhead = victim.interrupt()
                    self.cluster.release(victim.task_id)
                    self._warmup_until.pop(victim.task_id, None)
                    self._log(
                        "preempt", victim.task_id,
                        f"for={task.task_id} save={overhead:.0f}s",
                    )
                nodes = self._pick_nodes(task)
                if nodes is None:
                    continue
            resuming = task.state is TaskState.INTERRUPTED
            self.cluster.allocate(nodes, task.task_id)
            task.assigned_nodes = nodes
            task.state = TaskState.RUNNING
            if task.started_at is None:
                task.started_at = self.now
            warmup = task.resume_time if resuming else 0.0
            self._warmup_until[task.task_id] = self.now + warmup
            self._log(
                "requeue-start" if resuming else "start",
                task.task_id,
                f"nodes={len(nodes)}",
            )

    def _log(self, kind: str, task_id: str, detail: str = "") -> None:
        self.events.append(
            SchedulerEvent(time=self.now, kind=kind, task_id=task_id, detail=detail)
        )
        sess = telemetry.session()
        if sess is not None:
            self._record_telemetry(sess, kind, task_id, detail)

    def _record_telemetry(self, sess, kind: str, task_id: str, detail: str) -> None:
        """Span per task lifecycle phase: queued -> run -> (finish|preempt).

        Each task gets its own track (``scheduler/<task_id>``), so its
        queued/run/interrupted phases line up as one swim-lane.
        """
        if self._tele_sess is not sess:
            self._tele_sess = sess
            self._tele_spans = {}
        sess.registry.counter("sched_events_total", kind=kind).inc()
        tracer = sess.tracer
        if tracer is None:
            return
        now = self.now
        track = f"scheduler/{task_id}"
        closed = self._tele_spans.pop(task_id, None)
        if kind == "submit":
            self._tele_spans[task_id] = tracer.begin(
                "queued", now, track=track, cat="scheduler"
            )
        elif kind in ("start", "requeue-start"):
            tracer.end(closed, now)
            if closed is not None and closed.name == "queued":
                sess.registry.histogram(
                    "task_queue_wait_s",
                    priority=self.tasks[task_id].priority,
                ).observe(now - closed.ts, ts=now)
            self._tele_spans[task_id] = tracer.begin(
                "run", now, track=track, cat="scheduler",
                args={"detail": detail} if detail else None,
            )
        elif kind == "finish":
            tracer.end(closed, now)
            sess.registry.counter("tasks_finished_total").inc()
        elif kind in ("preempt", "crash", "drain"):
            # A "drain" may name a node with no resident task; only real
            # tasks get their run span closed and a new queued span.
            if task_id in self.tasks:
                tracer.end(closed, now, reason=kind)
                # The victim re-queues; its wait shows up as a new queued span.
                self._tele_spans[task_id] = tracer.begin(
                    "queued", now, track=track, cat="scheduler",
                    args={"after": kind},
                )
