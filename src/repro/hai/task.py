"""Task model and the checkpoint-interrupt protocol state machine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SchedulerError


class TaskState(enum.Enum):
    """Lifecycle states of a platform task."""

    QUEUED = "queued"
    RUNNING = "running"
    INTERRUPTED = "interrupted"  # preempted with checkpoint saved
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class Task:
    """One training task following the platform coding rules.

    Tasks must "accept the interruption signal, save checkpoints, notify
    the cluster, and recover from the checkpoint" (Section VI-C). The
    scheduler drives this protocol; the task records its progress and the
    checkpoint it can resume from.
    """

    task_id: str
    nodes_required: int
    total_work: float  # seconds of computation needed
    priority: int = 0  # higher preempts lower
    zone: Optional[int] = None  # preferred zone; None = any
    checkpoint_interval: float = 300.0  # periodic saves (5 min default)
    checkpoint_save_time: float = 5.0  # seconds per save (3FS is fast)
    resume_time: float = 5.0  # checkpoint load on resume

    state: TaskState = TaskState.QUEUED
    work_done: float = 0.0
    checkpointed_work: float = 0.0
    assigned_nodes: List[str] = field(default_factory=list)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    preemptions: int = 0
    failures: int = 0

    def __post_init__(self) -> None:
        if self.nodes_required < 1:
            raise SchedulerError("nodes_required must be >= 1")
        if self.total_work <= 0:
            raise SchedulerError("total_work must be positive")
        if self.checkpoint_interval <= 0:
            raise SchedulerError("checkpoint_interval must be positive")

    # -- protocol -------------------------------------------------------------

    @property
    def remaining_work(self) -> float:
        """Seconds of computation left from the last durable state."""
        return self.total_work - self.work_done

    def advance(self, seconds: float) -> None:
        """Account ``seconds`` of useful computation (periodic checkpoints
        update the durable mark automatically)."""
        if self.state is not TaskState.RUNNING:
            raise SchedulerError(f"{self.task_id}: advance while {self.state}")
        self.work_done = min(self.total_work, self.work_done + seconds)
        intervals = int(self.work_done / self.checkpoint_interval)
        self.checkpointed_work = max(
            self.checkpointed_work,
            min(intervals * self.checkpoint_interval, self.work_done),
        )

    def interrupt(self) -> float:
        """Planned preemption: save a checkpoint, then exit.

        Returns the seconds of overhead (the checkpoint save). No progress
        is lost — that is the point of the protocol.
        """
        if self.state is not TaskState.RUNNING:
            raise SchedulerError(f"{self.task_id}: interrupt while {self.state}")
        self.checkpointed_work = self.work_done
        self.state = TaskState.INTERRUPTED
        self.assigned_nodes = []
        self.preemptions += 1
        return self.checkpoint_save_time

    def crash(self) -> float:
        """Unplanned failure: progress since the last checkpoint is lost.

        Returns the seconds of lost work (bounded by the checkpoint
        interval — Section VII-A's "only the last 5 minutes").
        """
        if self.state is not TaskState.RUNNING:
            raise SchedulerError(f"{self.task_id}: crash while {self.state}")
        lost = self.work_done - self.checkpointed_work
        self.work_done = self.checkpointed_work
        self.state = TaskState.INTERRUPTED
        self.assigned_nodes = []
        self.failures += 1
        return lost
