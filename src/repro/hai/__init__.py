"""HAI Platform: time-sharing task scheduling (Section VI-C).

"The principle of time-sharing scheduling is applied to cluster resource
management. Users submit tasks ... and the platform interrupts and loads
tasks according to current resource requirements, cluster busyness, etc."

Key policies implemented here:

* whole-node allocation — GPUs are not pooled; nodes are classified and
  tagged by resource type and network zone,
* priority-driven preemption with the checkpoint-interrupt protocol
  (signal -> save checkpoint -> notify -> exit; resume from checkpoint),
* at most **one** cross-zone task at a time (Section III-B), so the
  double-binary-tree allreduce crosses the inter-zone links on only one
  node pair,
* utilization accounting (the platform "facilitates 99% utilization").
"""

from repro.hai.task import Task, TaskState
from repro.hai.cluster import HAICluster, NodeInfo
from repro.hai.scheduler import SchedulerEvent, TimeSharingScheduler

__all__ = [
    "HAICluster",
    "NodeInfo",
    "SchedulerEvent",
    "Task",
    "TaskState",
    "TimeSharingScheduler",
]
