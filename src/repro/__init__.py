"""Fire-Flyer AI-HPC reproduction.

A simulation-grade reimplementation of the systems described in
"Fire-Flyer AI-HPC: A Cost-Effective Software-Hardware Co-Design for Deep
Learning" (DeepSeek-AI, SC 2024):

* :mod:`repro.simcore` — discrete-event simulation kernel
* :mod:`repro.hardware` — PCIe A100 / DGX / storage node models
* :mod:`repro.network` — fat-tree fabrics, routing, QoS, flow simulation
* :mod:`repro.numerics` — executable BF16/FP8 codecs and reduce kernels
* :mod:`repro.collectives` — HFReduce and NCCL (executable + models)
* :mod:`repro.haiscale` — DDP / FSDP / pipeline / TP / EP / ZeRO
* :mod:`repro.fs3` — the 3FS distributed file system (CRAQ, meta, KV)
* :mod:`repro.hai` — the HAI time-sharing platform
* :mod:`repro.ckpt` — the checkpoint manager
* :mod:`repro.reliability` — validator + failure characterization
* :mod:`repro.costmodel` — cost, power, and growth accounting
* :mod:`repro.experiments` — one module per paper table/figure

Quick start::

    from repro.collectives import AllreduceConfig, HFReduceModel, NCCLRingModel
    from repro.units import MiB, as_gBps

    cfg = AllreduceConfig(nbytes=186 * MiB, n_nodes=16)
    print(as_gBps(HFReduceModel().bandwidth(cfg)))   # ~7.5 GB/s
    print(as_gBps(NCCLRingModel().bandwidth(cfg)))   # ~4.5 GB/s
"""

__version__ = "1.0.0"

__all__ = [
    "ckpt",
    "collectives",
    "costmodel",
    "errors",
    "experiments",
    "fairshare",
    "fs3",
    "hai",
    "haiscale",
    "hardware",
    "network",
    "numerics",
    "reliability",
    "simcore",
    "units",
]
