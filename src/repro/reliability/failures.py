"""Failure telemetry: the paper's raw data and calibrated generators.

Embeds the appendix raw data — Table VII (memory/network failures by
month) and Table VIII (IB link flash cuts by day) — as ground truth, and
provides generators whose statistics match it, so the validator, the
scheduler's failure handling, and the checkpoint-recovery experiments run
against realistic failure streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.faults import FaultPlan, GpuXid
from repro.reliability.xid import TABLE_VI_COUNTS, classify_xid

#: Table VII — monthly failure counts, October 2023 .. March 2024.
#: Keys: failure class; values: six monthly counts.
MONTHLY_FAILURES: Dict[str, List[int]] = {
    "main_memory": [4, 14, 8, 11, 8, 9],
    "network": [29, 8, 17, 9, 12, 14],
    "xid_63": [21, 22, 21, 16, 18, 22],
    "xid_64": [0, 0, 0, 1, 0, 0],
    "xid_79": [0, 0, 4, 3, 2, 6],
    "xid_94": [0, 4, 2, 1, 0, 0],
    "xid_95": [0, 0, 2, 1, 3, 0],
}

MONTH_LABELS = ["2023-10", "2023-11", "2023-12", "2024-01", "2024-02", "2024-03"]

#: Table VIII — IB network flash cuts: (date, failure count) over a year.
IB_FLASH_CUTS: List[Tuple[str, int]] = [
    ("2023-04-19", 1), ("2023-04-21", 1), ("2023-04-26", 1), ("2023-04-27", 4),
    ("2023-04-30", 1), ("2023-05-01", 1), ("2023-05-04", 2), ("2023-05-06", 2),
    ("2023-05-09", 2), ("2023-05-17", 2), ("2023-05-26", 1), ("2023-05-27", 8),
    ("2023-05-28", 10), ("2023-05-30", 2), ("2023-06-05", 1), ("2023-06-06", 1),
    ("2023-06-08", 1), ("2023-06-14", 2), ("2023-06-16", 0), ("2023-06-17", 2),
    ("2023-06-20", 3), ("2023-06-26", 1), ("2023-06-27", 2), ("2023-07-04", 2),
    ("2023-07-06", 2), ("2023-07-07", 10), ("2023-07-08", 1), ("2023-07-10", 2),
    ("2023-07-12", 10), ("2023-07-13", 1), ("2023-07-18", 2), ("2023-07-20", 1),
    ("2023-07-23", 2), ("2023-07-24", 2), ("2023-07-26", 1), ("2023-07-29", 3),
    ("2023-08-06", 3), ("2023-08-08", 1), ("2023-08-09", 1), ("2023-08-16", 1),
    ("2023-08-17", 2), ("2023-08-18", 1), ("2023-08-20", 1), ("2023-08-23", 2),
    ("2023-08-25", 3), ("2023-08-26", 4), ("2023-08-28", 4), ("2023-08-31", 7),
    ("2023-09-01", 3), ("2023-09-04", 1), ("2023-09-05", 3), ("2023-09-07", 3),
    ("2023-09-12", 1), ("2023-09-17", 1), ("2023-09-21", 7), ("2023-09-27", 1),
    ("2023-10-08", 2), ("2023-10-10", 1), ("2023-10-11", 1), ("2023-10-16", 1),
    ("2023-10-22", 1), ("2023-10-25", 1), ("2023-10-26", 3), ("2023-10-27", 2),
    ("2023-10-28", 1), ("2023-11-02", 1), ("2023-11-06", 1), ("2023-11-09", 1),
    ("2023-11-14", 1), ("2023-11-20", 1), ("2023-11-30", 3), ("2023-12-07", 5),
    ("2023-12-09", 1), ("2023-12-10", 1), ("2023-12-14", 1), ("2023-12-22", 3),
    ("2023-12-24", 5), ("2023-12-31", 1), ("2024-01-01", 1), ("2024-01-06", 1),
    ("2024-01-07", 1), ("2024-01-10", 2), ("2024-01-15", 1), ("2024-01-25", 1),
    ("2024-01-31", 2), ("2024-02-03", 5), ("2024-02-05", 1), ("2024-02-17", 1),
    ("2024-02-22", 1), ("2024-02-23", 3), ("2024-02-26", 1), ("2024-03-01", 3),
    ("2024-03-05", 1), ("2024-03-11", 1), ("2024-03-16", 2), ("2024-03-18", 1),
    ("2024-03-24", 1), ("2024-03-25", 1), ("2024-03-29", 2), ("2024-03-30", 1),
    ("2024-03-31", 1),
]


@dataclass(frozen=True)
class FailureEvent:
    """One synthetic failure occurrence."""

    time: float  # seconds into the trace
    kind: str  # "xid" | "main_memory" | "network"
    xid: int = 0  # for kind == "xid"
    node: str = ""


class FailureGenerator:
    """Synthesizes failure streams whose statistics match the appendix.

    * Xid events follow Table VI's empirical distribution over codes;
    * memory/network events follow Table VII's monthly rates;
    * IB flash cuts bootstrap Table VIII's daily counts.

    Rates scale linearly with cluster size relative to the production
    10,000-GPU / 1,250-node system.
    """

    PRODUCTION_NODES = 1250

    def __init__(self, n_nodes: int = 1250, seed: int = 0) -> None:
        if n_nodes < 1:
            raise ReproError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self.rng = np.random.default_rng(seed)
        self.scale = n_nodes / self.PRODUCTION_NODES

    # -- Xid stream ---------------------------------------------------------------

    def xid_rate_per_second(self) -> float:
        """Cluster-wide Xid event rate (Table VI total over one year)."""
        total_per_year = sum(TABLE_VI_COUNTS.values()) * self.scale
        return total_per_year / (365.0 * 86400.0)

    def sample_xids(self, n: int) -> List[int]:
        """Draw ``n`` Xid codes from the empirical distribution."""
        codes = sorted(TABLE_VI_COUNTS)
        weights = np.array([TABLE_VI_COUNTS[c] for c in codes], dtype=float)
        weights /= weights.sum()
        return [int(c) for c in self.rng.choice(codes, size=n, p=weights)]

    def _xid_stream(self, duration_seconds: float) -> List[FailureEvent]:
        if duration_seconds <= 0:
            raise ReproError("duration must be positive")
        rate = self.xid_rate_per_second()
        n = int(self.rng.poisson(rate * duration_seconds))
        times = np.sort(self.rng.uniform(0.0, duration_seconds, size=n))
        codes = self.sample_xids(n)
        return [
            FailureEvent(
                time=float(t),
                kind="xid",
                xid=c,
                node=f"node{int(self.rng.integers(self.n_nodes))}",
            )
            for t, c in zip(times, codes)
        ]

    def failure_stream(self, duration_seconds: float) -> List[FailureEvent]:
        """Poisson Xid arrivals over ``duration_seconds``."""
        return self._xid_stream(duration_seconds)

    def fault_plan(self, duration_seconds: float) -> FaultPlan:
        """The calibrated Xid stream as a typed, injectable fault plan.

        Same generator state and statistics as :meth:`failure_stream`,
        rendered as :class:`~repro.faults.GpuXid` events that the
        cross-layer injectors (scheduler, HFReduce DES, checkpoint
        engine) consume directly.
        """
        return FaultPlan([
            GpuXid(time=ev.time, node=ev.node, xid=ev.xid)
            for ev in self._xid_stream(duration_seconds)
        ])

    # -- monthly classes --------------------------------------------------------------

    def monthly_rates(self) -> Dict[str, float]:
        """Mean events/month per failure class (scaled to this cluster)."""
        return {
            k: float(np.mean(v)) * self.scale for k, v in MONTHLY_FAILURES.items()
        }

    def sample_months(self, n_months: int) -> Dict[str, List[int]]:
        """Poisson monthly counts per class for ``n_months``."""
        if n_months < 1:
            raise ReproError("n_months must be >= 1")
        rates = self.monthly_rates()
        return {
            k: [int(x) for x in self.rng.poisson(rate, size=n_months)]
            for k, rate in rates.items()
        }

    # -- IB flash cuts -----------------------------------------------------------------

    def ib_daily_counts(self, n_days: int) -> List[int]:
        """Bootstrap daily IB flash-cut counts from Table VIII.

        The empirical record covers ~1 year with many zero-failure days;
        we resample (count, zero-day) structure to preserve burstiness
        ("these issues can occur randomly throughout the cluster's
        operational period").
        """
        if n_days < 1:
            raise ReproError("n_days must be >= 1")
        observed_days = 365
        nonzero = [c for _, c in IB_FLASH_CUTS if c > 0]
        p_event_day = len(nonzero) / observed_days
        out = []
        for _ in range(n_days):
            if self.rng.random() < p_event_day * self.scale:
                out.append(int(self.rng.choice(nonzero)))
            else:
                out.append(0)
        return out
