"""Executable GPU-memory byte-pattern test (Section VII-B).

"GPU Memory test: This involves checking each byte of GPU memory to
ensure no data corruption has occurred."

The production tool walks the physical memory; here the same algorithm
runs over a :class:`FaultyMemory` — a byte array with injectable stuck
bits and flipped cells — so the detector logic is exercised for real:

* pattern writes (0x00, 0xFF, 0xAA, 0x55, walking ones),
* read-back verification per pattern,
* address-in-address test (catches aliasing / addressing faults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.errors import ValidationFailure

PATTERNS = (0x00, 0xFF, 0xAA, 0x55, 0x01, 0x80)


class FaultyMemory:
    """A byte array with injectable faults (the test target)."""

    def __init__(self, size: int, seed: int = 0) -> None:
        if size < 1:
            raise ValidationFailure("memory size must be >= 1")
        self.size = size
        self._data = np.zeros(size, dtype=np.uint8)
        self._stuck_or: Dict[int, int] = {}  # address -> bits stuck at 1
        self._stuck_and: Dict[int, int] = {}  # address -> mask of working bits

    # -- fault injection ---------------------------------------------------------

    def inject_stuck_at_one(self, address: int, bit: int) -> None:
        """Force one bit to read as 1 regardless of writes."""
        self._check_addr(address)
        self._stuck_or[address] = self._stuck_or.get(address, 0) | (1 << bit)

    def inject_stuck_at_zero(self, address: int, bit: int) -> None:
        """Force one bit to read as 0 regardless of writes."""
        self._check_addr(address)
        mask = self._stuck_and.get(address, 0xFF) & ~(1 << bit) & 0xFF
        self._stuck_and[address] = mask

    def _check_addr(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise ValidationFailure(f"address {address} out of range")

    # -- access ---------------------------------------------------------------------

    def write(self, start: int, values: np.ndarray) -> None:
        """Store bytes (faults apply on read)."""
        self._data[start : start + len(values)] = values

    def read(self, start: int, length: int) -> np.ndarray:
        """Load bytes with fault effects applied."""
        out = self._data[start : start + length].copy()
        for addr, bits in self._stuck_or.items():
            if start <= addr < start + length:
                out[addr - start] |= bits
        for addr, mask in self._stuck_and.items():
            if start <= addr < start + length:
                out[addr - start] &= mask
        return out


@dataclass(frozen=True)
class MemoryFault:
    """One detected corruption."""

    address: int
    pattern: int
    expected: int
    observed: int


def run_memory_test(mem: FaultyMemory, block: int = 1 << 16) -> List[MemoryFault]:
    """Execute the full byte-pattern sweep; returns detected faults."""
    faults: List[MemoryFault] = []
    seen: Set[int] = set()

    def record(start: int, expected: np.ndarray, observed: np.ndarray,
               pattern: int) -> None:
        bad = np.nonzero(observed != expected)[0]
        for i in bad:
            addr = start + int(i)
            if addr not in seen:
                seen.add(addr)
                faults.append(
                    MemoryFault(
                        address=addr,
                        pattern=pattern,
                        expected=int(expected[i]),
                        observed=int(observed[i]),
                    )
                )

    # Fixed patterns.
    for pattern in PATTERNS:
        for start in range(0, mem.size, block):
            length = min(block, mem.size - start)
            buf = np.full(length, pattern, dtype=np.uint8)
            mem.write(start, buf)
            record(start, buf, mem.read(start, length), pattern)

    # Address-in-address (detects aliasing): byte value = addr & 0xFF.
    for start in range(0, mem.size, block):
        length = min(block, mem.size - start)
        buf = (np.arange(start, start + length) & 0xFF).astype(np.uint8)
        mem.write(start, buf)
        record(start, buf, mem.read(start, length), -1)

    return sorted(faults, key=lambda f: f.address)
