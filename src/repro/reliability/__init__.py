"""Stability and robustness tooling (Section VII).

* :mod:`repro.reliability.xid` — GPU Xid error taxonomy (Table V) and the
  production census (Table VI),
* :mod:`repro.reliability.failures` — the paper's raw failure telemetry
  (Tables VII, VIII) and calibrated synthetic generators,
* :mod:`repro.reliability.validator` — the weekly hardware validator
  suite, with fault injection for testing,
* :mod:`repro.reliability.analysis` — characterization analytics behind
  Figures 10 and 11 and the Section VIII-D cross-cluster comparison.
"""

from repro.reliability.xid import (
    TABLE_VI_COUNTS,
    XidCategory,
    XidInfo,
    classify_xid,
    xid_census,
)
from repro.reliability.failures import (
    IB_FLASH_CUTS,
    MONTHLY_FAILURES,
    FailureEvent,
    FailureGenerator,
)
from repro.reliability.validator import (
    CheckResult,
    NodeHealth,
    Validator,
)
from repro.reliability.memtest import (
    FaultyMemory,
    MemoryFault,
    run_memory_test,
)
from repro.reliability.hostping import Diagnosis, HostPing, HostState
from repro.reliability.analysis import (
    compare_with_published_cluster,
    ib_failure_series,
    monthly_failure_series,
    xid_percentage_table,
)

__all__ = [
    "CheckResult",
    "FailureEvent",
    "FailureGenerator",
    "FaultyMemory",
    "Diagnosis",
    "HostPing",
    "HostState",
    "IB_FLASH_CUTS",
    "MemoryFault",
    "MONTHLY_FAILURES",
    "NodeHealth",
    "TABLE_VI_COUNTS",
    "Validator",
    "XidCategory",
    "XidInfo",
    "classify_xid",
    "compare_with_published_cluster",
    "ib_failure_series",
    "monthly_failure_series",
    "run_memory_test",
    "xid_census",
    "xid_percentage_table",
]
