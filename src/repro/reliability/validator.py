"""The validator: weekly hardware health checks (Section VII-B).

"The platform's automatic operation and maintenance system runs the
validator program weekly on nodes to verify their proper functionality.
It removes the faulty nodes from the scheduling platform."

The checks mirror the paper's list:

1. hardware frequency, link speed, and link status,
2. CPU stress and memory bandwidth,
3. GPU memory byte-pattern test,
4. full-occupancy GEMM (compute-logic check),
5. intra-node allreduce (NVLink bandwidth through the application path),
6. storage bandwidth stress.

Faults are injected through :class:`NodeHealth`, which models the node's
true (possibly degraded) condition; each check measures against the spec
and fails when outside tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import ReproError
from repro.hardware.node import NodeSpec, fire_flyer_node
from repro.units import gBps


@dataclass
class NodeHealth:
    """Ground-truth condition of one node (fault injection surface)."""

    node: str
    spec: NodeSpec = field(default_factory=lambda: fire_flyer_node(nvlink=True))
    # Degradation multipliers (1.0 = healthy).
    cpu_frequency_factor: float = 1.0
    memory_bw_factor: float = 1.0
    nvlink_bw_factor: float = 1.0
    storage_bw_factor: float = 1.0
    gemm_accuracy_ok: bool = True
    ib_link_up: bool = True
    ib_link_speed_factor: float = 1.0
    #: GPU indices with stuck/corrupt memory bytes.
    gpu_memory_faults: Set[int] = field(default_factory=set)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validator check."""

    check: str
    passed: bool
    measured: float
    expected: float
    detail: str = ""


class Validator:
    """Runs the full check suite against a node's health state."""

    def __init__(self, tolerance: float = 0.10) -> None:
        if not 0 < tolerance < 1:
            raise ReproError("tolerance must be in (0,1)")
        self.tolerance = tolerance

    # -- individual checks -----------------------------------------------------

    def check_link_status(self, health: NodeHealth) -> CheckResult:
        """IB link up and at negotiated speed."""
        expected = health.spec.nic.line_rate
        measured = (
            expected * health.ib_link_speed_factor if health.ib_link_up else 0.0
        )
        passed = health.ib_link_up and health.ib_link_speed_factor >= 1 - self.tolerance
        return CheckResult("link_status", passed, measured, expected,
                           "" if passed else "IB link down or degraded")

    def check_cpu_stress(self, health: NodeHealth) -> CheckResult:
        """CPU frequency under load."""
        passed = health.cpu_frequency_factor >= 1 - self.tolerance
        return CheckResult("cpu_stress", passed, health.cpu_frequency_factor, 1.0,
                           "" if passed else "CPU throttling detected")

    def check_memory_bandwidth(self, health: NodeHealth) -> CheckResult:
        """STREAM-style host memory bandwidth."""
        expected = health.spec.memory_bandwidth
        measured = expected * health.memory_bw_factor
        passed = measured >= expected * (1 - self.tolerance)
        return CheckResult("memory_bandwidth", passed, measured, expected,
                           "" if passed else "memory bandwidth below spec")

    def check_gpu_memory(self, health: NodeHealth) -> CheckResult:
        """Byte-pattern test over each GPU's memory.

        For each GPU flagged faulty, actually executes the byte-pattern
        sweep (:mod:`repro.reliability.memtest`) over a scaled-down
        memory region with an injected stuck bit, so the detector logic
        runs for real rather than echoing the injection flag.
        """
        from repro.reliability.memtest import FaultyMemory, run_memory_test

        detected = []
        for gpu in range(max(health.spec.gpu_count, 1)):
            mem = FaultyMemory(4096)
            if gpu in health.gpu_memory_faults:
                mem.inject_stuck_at_one(1024 + gpu, bit=gpu % 8)
            if run_memory_test(mem, block=1024):
                detected.append(gpu)
        passed = not detected
        return CheckResult(
            "gpu_memory", passed, float(len(detected)), 0.0,
            "" if passed else f"data corruption on GPUs {detected}",
        )

    def check_gemm(self, health: NodeHealth) -> CheckResult:
        """Full-memory-occupancy GEMM with result verification.

        Actually multiplies matrices and compares against a reference —
        the check the paper uses to catch silent computational errors.
        """
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 64)).astype(np.float32)
        b = rng.standard_normal((64, 64)).astype(np.float32)
        result = a @ b
        if not health.gemm_accuracy_ok:
            result = result.copy()
            result[7, 7] += 1.0  # a silent bit-flip-style corruption
        reference = np.dot(a.astype(np.float64), b.astype(np.float64))
        max_err = float(np.max(np.abs(result - reference)))
        passed = max_err < 1e-2
        return CheckResult("gemm", passed, max_err, 0.0,
                           "" if passed else "GEMM result mismatch")

    def check_intra_node_allreduce(self, health: NodeHealth) -> CheckResult:
        """NVLink bandwidth via the application-level allreduce path."""
        if health.spec.gpu is None or health.spec.gpu.nvlink_bw <= 0:
            return CheckResult("intra_node_allreduce", True, 0.0, 0.0,
                               "no NVLink installed; skipped")
        expected = health.spec.gpu.nvlink_bw
        measured = expected * health.nvlink_bw_factor
        passed = measured >= expected * (1 - self.tolerance)
        return CheckResult("intra_node_allreduce", passed, measured, expected,
                           "" if passed else "NVLink bandwidth below spec")

    def check_storage_stress(self, health: NodeHealth) -> CheckResult:
        """Storage path bandwidth (3FS client throughput)."""
        expected = gBps(2.0)  # per-node sustained client target
        measured = expected * health.storage_bw_factor
        passed = measured >= expected * (1 - self.tolerance)
        return CheckResult("storage_stress", passed, measured, expected,
                           "" if passed else "storage throughput below target")

    # -- the weekly sweep -----------------------------------------------------------

    CHECKS = (
        "check_link_status",
        "check_cpu_stress",
        "check_memory_bandwidth",
        "check_gpu_memory",
        "check_gemm",
        "check_intra_node_allreduce",
        "check_storage_stress",
    )

    def validate_node(self, health: NodeHealth) -> List[CheckResult]:
        """Run every check; returns all results."""
        return [getattr(self, c)(health) for c in self.CHECKS]

    def node_passes(self, health: NodeHealth) -> bool:
        """Whether all checks pass."""
        return all(r.passed for r in self.validate_node(health))

    def weekly_sweep(self, fleet: Dict[str, NodeHealth]) -> List[str]:
        """Validate a fleet; returns node names to remove from scheduling."""
        return sorted(
            name for name, health in fleet.items() if not self.node_passes(health)
        )
