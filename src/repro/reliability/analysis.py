"""Failure characterization analytics (Figures 10, 11; Section VIII-D)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.reliability.failures import IB_FLASH_CUTS, MONTH_LABELS, MONTHLY_FAILURES
from repro.reliability.xid import TABLE_VI_COUNTS, XidCategory, classify_xid


def xid_percentage_table() -> List[Tuple[int, str, int, float]]:
    """Table VI with percentages: (xid, category, count, percent)."""
    total = sum(TABLE_VI_COUNTS.values())
    rows = []
    for xid in sorted(TABLE_VI_COUNTS, key=lambda x: -TABLE_VI_COUNTS[x]):
        count = TABLE_VI_COUNTS[xid]
        rows.append(
            (xid, classify_xid(xid).category.value, count, 100.0 * count / total)
        )
    return rows


def nvlink_share() -> float:
    """Xid-74's share of all GPU errors (paper: 42.57%)."""
    return TABLE_VI_COUNTS[74] / sum(TABLE_VI_COUNTS.values())


def illegal_access_share() -> float:
    """Xid-43's share (paper: 33.48%)."""
    return TABLE_VI_COUNTS[43] / sum(TABLE_VI_COUNTS.values())


def ecc_share() -> float:
    """GPU memory ECC errors' share (paper: ~2%)."""
    ecc = sum(
        c for x, c in TABLE_VI_COUNTS.items()
        if classify_xid(x).category is XidCategory.GPU_ECC
    )
    return ecc / sum(TABLE_VI_COUNTS.values())


def monthly_failure_series() -> Dict[str, List[Tuple[str, int]]]:
    """Figure 10's series: per failure class, (month, count) pairs.

    "xids" in the figure aggregates the GPU-memory-related codes.
    """
    xids = [
        sum(vals)
        for vals in zip(
            MONTHLY_FAILURES["xid_63"],
            MONTHLY_FAILURES["xid_64"],
            MONTHLY_FAILURES["xid_79"],
            MONTHLY_FAILURES["xid_94"],
            MONTHLY_FAILURES["xid_95"],
        )
    ]
    return {
        "main_memory": list(zip(MONTH_LABELS, MONTHLY_FAILURES["main_memory"])),
        "network": list(zip(MONTH_LABELS, MONTHLY_FAILURES["network"])),
        "xids": list(zip(MONTH_LABELS, xids)),
    }


def gpu_vs_cpu_ecc_ratio() -> float:
    """GPU-memory xids vs CPU memory ECC events over the window.

    Figure 10's observation: "the number of GPU ECC faults considerably
    surpasses those from the CPU".
    """
    series = monthly_failure_series()
    gpu = sum(c for _, c in series["xids"])
    cpu = sum(c for _, c in series["main_memory"])
    if cpu == 0:
        raise ReproError("no CPU memory events in the window")
    return gpu / cpu


def network_share_excluding_xid74() -> float:
    """IB link failures' share of hardware faults excluding Xid-74.

    Section VII-C2: "IB link failures account for 30% of hardware faults
    excluding Xid74" — computed over the Table VII window.
    """
    series = monthly_failure_series()
    total = sum(
        sum(c for _, c in s) for s in series.values()
    )
    network = sum(c for _, c in series["network"])
    return network / total


def ib_failure_series() -> List[Tuple[str, int]]:
    """Figure 11's series: daily IB flash cuts (Table VIII verbatim)."""
    return list(IB_FLASH_CUTS)


def ib_failure_total() -> int:
    """Total flash cuts across the observation year."""
    return sum(c for _, c in IB_FLASH_CUTS)


def compare_with_published_cluster() -> Dict[str, float]:
    """Section VIII-D: our NVLink failure share vs the cited cluster.

    The referenced paper reports 54 NVLink / 21 CUDA / 16 node / 12 ECC /
    12 network failures and states 54 of 103 total (52.42%) — we use its
    stated total, as the cited text does (the raw category counts sum to
    115, an inconsistency in the source). Fire-Flyer's NVLink-related
    Xid-74 events are 42.57% of GPU failures.
    """
    other_total = 103
    return {
        "other_cluster_nvlink_share": 54 / other_total,
        "fire_flyer_nvlink_share": nvlink_share(),
    }
