"""GPU Xid error taxonomy and the production census (Tables V and VI)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError


class XidCategory(enum.Enum):
    """Table V's five groups."""

    SOFTWARE = "software"
    NVLINK = "nvlink"
    GPU_ECC = "gpu_ecc"
    UNCORRECTABLE = "uncorrectable"
    GSP = "gsp"


class Action(enum.Enum):
    """Recommended operator response."""

    CHECK_APPLICATION = "check_application"  # likely user code
    STRESS_TEST = "stress_test"  # exclude repeat offenders
    GPU_RESET = "gpu_reset"  # row remapping handles it
    NODE_REBOOT = "node_reboot"
    RMA = "rma"  # fieldiag then return to vendor


@dataclass(frozen=True)
class XidInfo:
    """Classification record for one Xid code."""

    xid: int
    category: XidCategory
    action: Action
    description: str


_XID_TABLE: Dict[int, XidInfo] = {
    info.xid: info
    for info in (
        # Software causes (may still indicate memory corruption).
        XidInfo(13, XidCategory.SOFTWARE, Action.CHECK_APPLICATION,
                "Graphics engine exception; possible anomaly in GPU memory"),
        XidInfo(31, XidCategory.SOFTWARE, Action.CHECK_APPLICATION,
                "GPU memory page fault; usually illegal address in user code"),
        XidInfo(43, XidCategory.SOFTWARE, Action.CHECK_APPLICATION,
                "GPU stopped processing: illegal memory access"),
        XidInfo(45, XidCategory.SOFTWARE, Action.CHECK_APPLICATION,
                "Preemptive cleanup of user application"),
        # NVLink — dominant on the PCIe architecture (bridge connectors).
        XidInfo(74, XidCategory.NVLINK, Action.STRESS_TEST,
                "NVLink error; on PCIe A100 occurs on the NVLink Bridge"),
        # GPU memory ECC; A100 row remapping recovers most.
        XidInfo(63, XidCategory.GPU_ECC, Action.GPU_RESET,
                "ECC page retirement / row remapping recording event"),
        XidInfo(64, XidCategory.GPU_ECC, Action.GPU_RESET,
                "ECC page retirement / row remapper failure"),
        XidInfo(94, XidCategory.GPU_ECC, Action.GPU_RESET,
                "Contained ECC error (application restart suffices)"),
        XidInfo(95, XidCategory.GPU_ECC, Action.GPU_RESET,
                "Uncontained ECC error"),
        # Uncorrectable GPU failures.
        XidInfo(44, XidCategory.UNCORRECTABLE, Action.NODE_REBOOT,
                "Graphics engine fault, uncorrectable"),
        XidInfo(48, XidCategory.UNCORRECTABLE, Action.NODE_REBOOT,
                "Double-bit ECC error"),
        XidInfo(61, XidCategory.UNCORRECTABLE, Action.NODE_REBOOT,
                "Internal microcontroller breakpoint"),
        XidInfo(62, XidCategory.UNCORRECTABLE, Action.NODE_REBOOT,
                "Internal microcontroller halt"),
        XidInfo(69, XidCategory.UNCORRECTABLE, Action.NODE_REBOOT,
                "Graphics engine class error"),
        XidInfo(79, XidCategory.UNCORRECTABLE, Action.NODE_REBOOT,
                "GPU fell off the bus"),
        # GSP.
        XidInfo(119, XidCategory.GSP, Action.RMA,
                "GSP module failure; run fieldiag, usually RMA"),
    )
}

#: Table VI — raw Xid counts observed over one year on Fire-Flyer 2.
TABLE_VI_COUNTS: Dict[int, int] = {
    74: 5521,
    13: 45,
    31: 2487,
    43: 4342,
    45: 240,
    63: 245,
    64: 2,
    94: 13,
    95: 17,
    44: 1,
    48: 2,
    61: 13,
    62: 3,
    69: 1,
    79: 37,
    119: 1,
}

TABLE_VI_TOTAL = 12970


def classify_xid(xid: int) -> XidInfo:
    """Look up an Xid code's classification (Table V)."""
    try:
        return _XID_TABLE[xid]
    except KeyError:
        raise ReproError(f"Xid {xid} is not in the Table V taxonomy")


def known_xids() -> Dict[int, XidInfo]:
    """The full taxonomy."""
    return dict(_XID_TABLE)


def xid_census() -> Dict[XidCategory, int]:
    """Aggregate Table VI counts by category."""
    out: Dict[XidCategory, int] = {c: 0 for c in XidCategory}
    for xid, count in TABLE_VI_COUNTS.items():
        out[classify_xid(xid).category] += count
    return out
