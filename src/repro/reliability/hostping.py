"""Intra-host bottleneck diagnosis (hostping-style, Section VII-B).

"Diagnosing tools like hostping are also integrated in our platform, but
to find root cause of Hardware Failures is still hard work for operation
teams."

The tool measures every intra-host data path against the node spec's
expectation and localizes the degraded component:

* GPU<->host over each GPU's PCIe link (and through its root port),
* GPU<->NIC peer-to-peer (the NCCL path),
* host memory bandwidth per socket,
* NVLink bridge bandwidth per GPU pair.

Measurements come from a :class:`HostState` fault-injection surface (like
:class:`~repro.reliability.validator.NodeHealth` but per-path), so the
*diagnosis logic* — mapping symptom patterns to components — runs for
real and is testable: e.g. "every GPU behind root port 5 is slow but
their links test clean individually" implicates the root complex, not
the GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.hardware.node import NodeSpec, fire_flyer_node
from repro.hardware.pcie import PCIeFabric, Transfer, TransferKind


@dataclass
class HostState:
    """Ground truth: per-component degradation multipliers (1.0 = good)."""

    node: NodeSpec = field(default_factory=lambda: fire_flyer_node(nvlink=True))
    gpu_link_factor: Dict[int, float] = field(default_factory=dict)  # per GPU
    root_port_factor: Dict[int, float] = field(default_factory=dict)  # per port
    nic_factor: float = 1.0
    memory_factor: Dict[int, float] = field(default_factory=dict)  # per socket
    nvlink_factor: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def _gpu(self, gpu: int) -> float:
        return self.gpu_link_factor.get(gpu, 1.0)

    def _port(self, port: int) -> float:
        return self.root_port_factor.get(port, 1.0)

    # -- "measurements" the diagnoser observes ---------------------------------

    def measure_gpu_host(self, gpu: int) -> float:
        """D2H bandwidth for one GPU, through its link and root port."""
        fab = PCIeFabric(self.node)
        clean = fab.rate_of([Transfer(f"gpu{gpu}", TransferKind.D2H)])
        port = self.node.slot(f"gpu{gpu}").root_port
        return clean * self._gpu(gpu) * self._port(port)

    def measure_gpu_nic(self, gpu: int) -> float:
        """P2P bandwidth GPU<->NIC."""
        fab = PCIeFabric(self.node)
        clean = fab.gpu_nic_p2p_bandwidth()
        port = self.node.slot(f"gpu{gpu}").root_port
        return clean * self._gpu(gpu) * self._port(port) * self.nic_factor

    def measure_memory(self, socket: int) -> float:
        """STREAM bandwidth on one socket."""
        clean = self.node.cpu.memory_bandwidth(sockets=1)
        return clean * self.memory_factor.get(socket, 1.0)

    def measure_nvlink(self, pair: Tuple[int, int]) -> float:
        """Bridge bandwidth for one GPU pair."""
        if self.node.gpu is None or self.node.gpu.nvlink_bw <= 0:
            return 0.0
        key = tuple(sorted(pair))
        return self.node.gpu.nvlink_bw * self.nvlink_factor.get(key, 1.0)


@dataclass(frozen=True)
class Diagnosis:
    """One implicated component."""

    component: str  # e.g. "gpu3-link", "root-port-5", "nic", "socket1-memory"
    severity: float  # observed / expected
    evidence: str


class HostPing:
    """Sweeps all intra-host paths and localizes degradations."""

    def __init__(self, tolerance: float = 0.10) -> None:
        if not 0 < tolerance < 1:
            raise ReproError("tolerance must be in (0,1)")
        self.tolerance = tolerance

    def diagnose(self, host: HostState) -> List[Diagnosis]:
        """Run the sweep; returns implicated components (may be empty)."""
        node = host.node
        fab = PCIeFabric(node)
        findings: List[Diagnosis] = []
        slow_gpus: Dict[int, float] = {}

        # 1. Per-GPU D2H sweep.
        for gpu in range(node.gpu_count):
            expected = fab.rate_of([Transfer(f"gpu{gpu}", TransferKind.D2H)])
            observed = host.measure_gpu_host(gpu)
            ratio = observed / expected
            if ratio < 1 - self.tolerance:
                slow_gpus[gpu] = ratio

        # 2. Localize: if every GPU on one root port is slow by the same
        #    factor, blame the port; otherwise blame individual links.
        by_port: Dict[int, List[int]] = {}
        for gpu in range(node.gpu_count):
            by_port.setdefault(node.slot(f"gpu{gpu}").root_port, []).append(gpu)
        blamed_ports: Set[int] = set()
        for port, gpus in by_port.items():
            ratios = [slow_gpus.get(g) for g in gpus]
            # A shared port is implicated only when at least two devices
            # behind it degrade uniformly; a singleton port is
            # indistinguishable from its device's own link.
            if len(gpus) >= 2 and all(r is not None for r in ratios) and (
                max(ratios) - min(ratios) < 0.02  # type: ignore[arg-type]
            ):
                blamed_ports.add(port)
                findings.append(
                    Diagnosis(
                        component=f"root-port-{port}",
                        severity=float(ratios[0]),  # type: ignore[arg-type]
                        evidence=f"all GPUs {gpus} uniformly degraded",
                    )
                )
        for gpu, ratio in sorted(slow_gpus.items()):
            port = node.slot(f"gpu{gpu}").root_port
            if port not in blamed_ports:
                findings.append(
                    Diagnosis(
                        component=f"gpu{gpu}-link",
                        severity=ratio,
                        evidence="D2H below link expectation",
                    )
                )

        # 3. NIC path: slow for every GPU while their D2H paths are clean
        #    implicates the NIC side.
        nic_ratios = []
        expected_p2p = fab.gpu_nic_p2p_bandwidth()
        for gpu in range(node.gpu_count):
            if gpu in slow_gpus:
                continue  # already explained by the GPU/port finding
            port = node.slot(f"gpu{gpu}").root_port
            if port in blamed_ports:
                continue
            nic_ratios.append(host.measure_gpu_nic(gpu) / expected_p2p)
        if nic_ratios and max(nic_ratios) < 1 - self.tolerance:
            findings.append(
                Diagnosis(
                    component="nic",
                    severity=max(nic_ratios),
                    evidence="P2P slow from every clean GPU",
                )
            )

        # 4. Per-socket memory.
        for socket in range(node.cpu_sockets):
            expected = node.cpu.memory_bandwidth(sockets=1)
            ratio = host.measure_memory(socket) / expected
            if ratio < 1 - self.tolerance:
                findings.append(
                    Diagnosis(
                        component=f"socket{socket}-memory",
                        severity=ratio,
                        evidence="STREAM below channel expectation",
                    )
                )

        # 5. NVLink pairs.
        if node.gpu is not None and node.gpu.nvlink_bw > 0:
            for pair in node.nvlink_pairs:
                ratio = host.measure_nvlink(pair) / node.gpu.nvlink_bw
                if ratio < 1 - self.tolerance:
                    findings.append(
                        Diagnosis(
                            component=f"nvlink-{pair[0]}-{pair[1]}",
                            severity=ratio,
                            evidence="bridge bandwidth below spec",
                        )
                    )
        return findings
