"""Chaos replay: the paper's weekly failure mix through every recovery path.

Section VII's operational story in one experiment: a seeded
:class:`~repro.faults.FaultPlan` replaying the appendix's weekly failure
profile (GPU Xids, ECC errors, IB flash cuts, NIC deaths, storage-node
loss, host hangs) is compiled once and injected into all four recovery
layers —

* **network** — flows reroute around flapped links or drain when a
  single-NIC host loses its access links,
* **collective** — HFReduce drops the dead rank and continues on a
  rebuilt double binary tree,
* **scheduler** — the victim task checkpoint-crashes, re-queues, and
  restarts when the node returns,
* **storage** — the 3FS client backs off through its retry schedule
  while the CRAQ chain re-forms around the dead replica,

and finally into a week-long training loop, where the checkpoint-interval
sweep reproduces the paper's bound: with 5-minute saves, a failure costs
"no more than 5 minutes" of progress.

Seeds with few natural events of some kind get a deterministic *coverage
floor* — one synthetic event per missing kind — so every recovery path is
exercised for any ``--seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.experiments.fmt import render_table
from repro.experiments.registry import experiment
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    LinkFlap,
    RetryPolicy,
    WEEK_SECONDS,
    weekly_profile,
)
from repro.network import Flow, two_zone_network
from repro.network.linkfail import assess_fault_plan
from repro.units import MINUTE


@dataclass(frozen=True)
class ChaosConfig:
    """Tunable knobs for the chaos replay (CLI ``--set``, see ``--list``)."""

    #: Compute-node pool faults land on (labels only; layers map them
    #: onto their own entity sets deterministically).
    nodes: int = 16
    #: Week-long training loop parameters for the goodput sweep.
    step_time_s: float = 10.0
    restart_time_s: float = 300.0  # detection + requeue + resume per crash
    #: Scheduler-path repair turnaround after a node fault.
    repair_after_s: float = 600.0
    #: Monitored-week workload: arrivals sized so the queue is empty at
    #: full capacity and visibly backed up one node short.
    task_arrival_s: float = 25 * MINUTE
    task_work_s: float = 45 * MINUTE
    #: How many switch links the monitored week samples ``link_util`` for.
    watched_links: int = 6


def _fabric(nodes: int = 16):
    half = nodes // 2
    zone0 = [f"cn{i}" for i in range(half)]
    zone1 = [f"cn{i}" for i in range(half, nodes)]
    return two_zone_network(half, zone0_hosts=zone0, zone1_hosts=zone1)


def _switch_links(fabric) -> List[Tuple[str, str]]:
    """Non-access links (both ends are switches), in sorted order."""
    return sorted(
        (a, b) if a < b else (b, a)
        for a, b in fabric.g.edges
        if fabric.g.degree(a) > 1 and fabric.g.degree(b) > 1
    )


def build_plan(seed: int, config: Optional[ChaosConfig] = None) -> FaultPlan:
    """The seeded weekly plan, floored so every fault kind appears."""
    cfg = config or ChaosConfig()
    nodes = [f"cn{i}" for i in range(cfg.nodes)]
    links = _switch_links(_fabric(cfg.nodes))
    plan = weekly_profile(seed, nodes=nodes, links=links)
    have = plan.counts()
    extras = []
    t = 3601.0  # distinct off-grid times, one per missing kind
    for kind in sorted(FAULT_KINDS):
        if have.get(kind):
            continue
        if kind == "link_flap":
            extras.append(LinkFlap(time=t, link=links[0], duration=30.0))
        else:
            extras.append(FAULT_KINDS[kind](time=t, node=nodes[0]))
        t += 3600.0
    return plan.merge(FaultPlan(extras)) if extras else plan


def _rescale(plan: FaultPlan, horizon: float) -> FaultPlan:
    """The plan's events compressed onto ``[0, horizon)`` in order."""
    if not len(plan):
        return plan
    f = horizon / (plan.horizon() + 1.0)
    return FaultPlan(
        [replace(e, time=e.time * f, event_id=-1) for e in plan],
        seed=plan.seed,
    )


def run_network(plan: FaultPlan, cfg: ChaosConfig) -> List[List]:
    """Replay link/NIC events against a live mixed-flow population."""
    fabric = _fabric(cfg.nodes)
    half = cfg.nodes // 2
    flows = [
        Flow(f"cn{i}", f"cn{(i + half) % cfg.nodes}", size=1.0, flow_id=i)
        for i in range(half)
    ]
    pa = assess_fault_plan(fabric, flows, plan)
    return [
        ["events replayed", float(len(pa.impacts))],
        ["flows rerouted", float(pa.flows_rerouted)],
        ["flows drained (task kill)", float(pa.flows_disconnected)],
        ["min surviving rate GB/s", pa.min_rate_floor / 1e9],
    ]


def run_collective(plan: FaultPlan, chaos_cfg: ChaosConfig) -> List[List]:
    """Node losses mid-allreduce: drop rank, rebuild tree, continue."""
    from repro.collectives.des_pipeline import HFReduceDesSim
    from repro.collectives.primitives import AllreduceConfig
    from repro.units import MiB

    sim = HFReduceDesSim()
    cfg = AllreduceConfig(nbytes=64 * MiB, n_nodes=chaos_cfg.nodes)
    base = sim.run(cfg)
    losses = plan.of_kind("nic_down", "gpu_xid", "ecc_error", "host_hang")
    # At most 3 rank losses inside this one allreduce (16 -> 13 ranks).
    scoped = FaultPlan(
        [replace(e, event_id=-1) for e in list(losses)[:3]], seed=plan.seed
    )
    faulty = sim.run(cfg, plan=_rescale(scoped, base.total_time * 0.8))
    return [
        ["fault-free time ms", base.total_time * 1e3],
        ["with faults ms", faulty.total_time * 1e3],
        ["rank losses injected", float(faulty.faults_injected)],
        ["tree rebuilds", float(faulty.tree_rebuilds)],
        ["surviving ranks", float(faulty.final_nodes)],
    ]


def run_scheduler(plan: FaultPlan, cfg: ChaosConfig) -> List[List]:
    """Crash/requeue through the checkpoint-interrupt protocol."""
    from repro.hai import HAICluster, Task, TimeSharingScheduler

    sched = TimeSharingScheduler(HAICluster.two_zone(4))
    for i in range(4):
        sched.submit(Task(
            task_id=f"train{i}", nodes_required=2, total_work=20000.0,
            checkpoint_interval=300.0,
        ))
    node_plan = _rescale(
        plan.of_kind("gpu_xid", "ecc_error", "nic_down", "host_hang"),
        16000.0,
    )
    recoveries = sched.inject_faults(node_plan, repair_after=cfg.repair_after_s)
    sched.run_until_idle()
    crashes = sum(1 for e in sched.events if e.kind == "crash")
    mean_rec = (
        sum(recoveries.values()) / len(recoveries) if recoveries else 0.0
    )
    return [
        ["faults delivered", float(len(node_plan))],
        ["task crashes", float(crashes)],
        ["crash->requeue recoveries", float(len(recoveries))],
        ["mean recovery s", mean_rec],
        ["makespan s", sched.now],
        ["utilization", sched.utilization()],
    ]


def run_storage(plan: FaultPlan) -> List[List]:
    """Kill storage nodes under live I/O; client retries through re-chain."""
    from repro.fs3 import FS3Client, KVStore, MetaService
    from repro.fs3.storage import StorageCluster

    storage = StorageCluster(n_nodes=2, ssds_per_node=2, replication=2,
                             targets_per_ssd=1)
    meta = MetaService(KVStore(), storage.chain_table)
    repaired = [0]

    def on_retry(client: FS3Client, chain_idx: int, attempt: int) -> None:
        # Ops repairs the fleet while the client backs off; by the third
        # attempt the dead nodes are back and re-chain can succeed.
        if attempt == 3:
            for name in sorted(storage.nodes):
                if not storage.nodes[name].alive:
                    repaired[0] += storage.recover_node(name)

    client = FS3Client(meta, storage, retry=RetryPolicy(), on_retry=on_retry)
    payload = b"\x5a" * 4096
    client.makedirs("/ckpt")
    client.write_file("/ckpt/shard0", payload)
    losses = plan.of_kind("storage_node_loss")
    outages = 0
    backoff_total = 0.0
    for event in losses:
        storage.apply_event(event)
        # Take the *other* node down too: a whole-chain outage is what
        # exercises retry + re-chain rather than CRAQ's read-any.
        for name in sorted(storage.nodes):
            if storage.nodes[name].alive:
                storage.fail_node(name)
        t0 = client._tele_clock
        data = client.read_file("/ckpt/shard0")
        assert data == payload
        backoff_total += client._tele_clock - t0
        outages += 1
    return [
        ["storage-node losses", float(outages)],
        ["reads recovered", float(outages)],
        ["client backoff s", backoff_total],
        ["replicas resynced", float(repaired[0])],
    ]


def run_monitor(
    plan: FaultPlan, seed: int, cfg: ChaosConfig
) -> Tuple[List[List], List[List]]:
    """Stream the week's symptoms through the live cluster monitor."""
    from repro.experiments.chaos_monitored import run_monitored

    week = run_monitored(plan, seed, config=cfg)
    scores = [s.row() for s in week.scores]
    loop = [
        ["alerts fired", float(week.alerts_fired)],
        ["alerts resolved", float(week.alerts_resolved)],
        ["nodes drained (closed loop)", float(week.drains)],
        ["nodes returned", float(week.undrains)],
        ["tasks displaced by drains", float(week.displaced)],
        ["tasks finished / submitted",
         f"{week.tasks_finished}/{week.tasks_submitted}"],
        ["queue wait p50 s (online)", week.queue_p50_s or 0.0],
        ["queue wait p99 s (online)", week.queue_p99_s or 0.0],
    ]
    return scores, loop


def run_goodput(plan: FaultPlan, cfg: ChaosConfig) -> List[List]:
    """Week-long training: goodput loss vs checkpoint interval."""
    from repro.ckpt import simulate_training

    node_plan = plan.of_kind(
        "gpu_xid", "ecc_error", "nic_down", "host_hang"
    )
    n_steps = int(WEEK_SECONDS / cfg.step_time_s)
    rows = []
    for interval in (120.0, 300.0, 600.0, 1800.0):
        s = simulate_training(
            "async", n_steps=n_steps, step_time=cfg.step_time_s,
            interval=interval, plan=node_plan,
            restart_time=cfg.restart_time_s,
        )
        per_failure = s.lost_time / s.failures if s.failures else 0.0
        rows.append([
            f"{interval:.0f}",
            float(s.failures),
            s.lost_time / 60.0,
            per_failure / 60.0,
            (1.0 - s.goodput) * 100.0,
        ])
    return rows


@experiment(
    "chaos",
    "Weekly failure mix replayed through every recovery path",
    telemetry=("faults_injected", "recovery_time_s", "fs3_retries_total"),
    seeded=True,
    config=ChaosConfig,
)
def render(seed: int = 7, config: Optional[ChaosConfig] = None) -> str:
    """Printable chaos replay."""
    cfg = config or ChaosConfig()
    plan = build_plan(seed, cfg)
    counts = plan.counts()
    score_rows, loop_rows = run_monitor(plan, seed, cfg)
    parts = [
        render_table(
            ["fault kind", "events/week"],
            [[k, float(v)] for k, v in counts.items()],
            title=f"Chaos replay, seed {seed}: the paper's weekly failure "
                  f"profile ({len(plan)} events)",
        ),
        render_table(
            ["network recovery", "value"], run_network(plan, cfg),
            title="IB flash cuts: reroute or drain (Section VII-C2)",
        ),
        render_table(
            ["collective recovery", "value"], run_collective(plan, cfg),
            title="HFReduce: continue on a rebuilt double tree",
        ),
        render_table(
            ["scheduler recovery", "value"], run_scheduler(plan, cfg),
            title="HAI: checkpoint-crash, requeue, restart (Section VI-C)",
        ),
        render_table(
            ["storage recovery", "value"], run_storage(plan),
            title="3FS: client backoff + CRAQ re-chain (Section VI-B3)",
        ),
        render_table(
            ["ckpt interval s", "failures", "lost min/week",
             "lost min/failure", "goodput loss %"],
            run_goodput(plan, cfg),
            title="Goodput loss vs checkpoint interval: 5-minute saves "
                  "bound loss per failure to ~5 minutes (Section VII-A)",
        ),
        render_table(
            ["detector", "fault kind", "events", "alerts", "matched",
             "precision", "recall", "median ttd s"],
            score_rows,
            title="Streaming detection scored against injected ground "
                  "truth (Section VII validator, online)",
        ),
        render_table(
            ["alert -> scheduler loop", "value"], loop_rows,
            title="Closed loop: node-convicting alerts drain and return "
                  "scheduler nodes",
        ),
    ]
    return "\n\n".join(parts)
