"""Section VII-A: checkpoint manager performance and recovery bounds.

The paper's claims: batch writes exceed 10 GiB/s per node so saving
completes "in just a few seconds"; saves run every 5 minutes, so a crash
loses at most 5 minutes of progress.

Reproduced three ways:

* a bandwidth model of the save path (NIC-bound with mirror replication),
* an end-to-end *executed* save/load through the in-memory 3FS,
* recovery-loss statistics for a simulated month of failures.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.registry import experiment
from repro.ckpt import CheckpointManager
from repro.experiments.fmt import render_table
from repro.fs3 import FS3Client, KVStore, MetaService
from repro.fs3.storage import StorageCluster
from repro.hardware.node import fire_flyer_node, storage_node
from repro.perf import PerfCounters
from repro.reliability.failures import FailureGenerator
from repro.units import GiB, as_giBps

PAPER = {
    "per_node_write_GiBps": 10.0,
    "save_seconds": "a few",
    "max_loss_minutes": 5.0,
}


def save_bandwidth_model(replication: int = 2, n_writers: int = 128,
                         write_efficiency: float = 0.5) -> Dict[str, float]:
    """Per-compute-node checkpoint write bandwidth (model).

    The batch write streams chunks over the node's 200 Gbps NIC; with
    mirror replication each byte lands twice on the storage side, but the
    *client* NIC carries it once and the fleet absorbs the fanout.
    ``n_writers`` is the checkpointing job's node count (a single large
    job, not the whole cluster); ``write_efficiency`` covers chunk-commit
    round trips, metadata updates, and CRAQ chain propagation relative to
    raw line rate — calibrated to the paper's "over 10 GiB/s per node".
    """
    node = fire_flyer_node()
    st = storage_node()
    client_nic = node.nic.bw
    fleet_write = 180 * st.ssd_count * st.ssd.write_bw / replication
    per_writer_share = fleet_write / n_writers
    rate = min(client_nic, per_writer_share) * write_efficiency
    return {
        "client_nic_GiBps": as_giBps(client_nic),
        "per_writer_share_GiBps": as_giBps(per_writer_share),
        "achieved_GiBps": as_giBps(rate),
    }


def save_time_model(model_params: float = 13e9, n_nodes: int = 64,
                    bytes_per_param: float = 14.0) -> Dict[str, float]:
    """Seconds to checkpoint a sharded model (fp16 weights + fp32 Adam)."""
    total = model_params * bytes_per_param
    per_node = total / n_nodes
    bw = save_bandwidth_model()["achieved_GiBps"] * GiB
    return {
        "total_GiB": total / GiB,
        "per_node_GiB": per_node / GiB,
        "save_seconds": per_node / bw,
    }


def executed_save_load(n_tensors: int = 16, elems: int = 65536) -> Dict[str, float]:
    """Actually run a save+load through the in-memory 3FS and time it."""
    storage = StorageCluster(n_nodes=4, ssds_per_node=4, replication=2,
                             targets_per_ssd=2)
    meta = MetaService(KVStore(), storage.chain_table)
    client = FS3Client(meta, storage)
    mgr = CheckpointManager(client)
    rng = np.random.default_rng(0)
    state = {
        f"layer{i}": rng.standard_normal(elems).astype(np.float32)
        for i in range(n_tensors)
    }
    nbytes = sum(v.nbytes for v in state.values())
    # Wall timing goes through the perf layer (DET002): PerfCounters is
    # the sanctioned wall-clock path, and the timings feed telemetry too.
    stats = PerfCounters()
    with stats.timeit("save_s"):
        mgr.save(1, state)
    with stats.timeit("load_s"):
        loaded = mgr.load(1)
    ok = all(np.array_equal(loaded[k], state[k]) for k in state)
    timings = stats.timings
    return {
        "bytes": float(nbytes),
        "save_seconds": timings["save_s"],
        "load_seconds": timings["load_s"],
        "roundtrip_ok": float(ok),
    }


def recovery_loss_statistics(days: int = 30, interval_s: float = 300.0,
                             seed: int = 0) -> Dict[str, float]:
    """Expected training loss to failures over a simulated month.

    Failures arrive per the Table VI-calibrated generator; each costs at
    most one checkpoint interval. Reports total lost hours and the
    fraction of the month — "for a cluster with thousands of nodes, this
    overhead from disaster recovery is minimal".
    """
    gen = FailureGenerator(n_nodes=1250, seed=seed)
    horizon = days * 86400.0
    events = gen.failure_stream(horizon)
    rng = np.random.default_rng(seed)
    lost = float(np.sum(rng.uniform(0.0, interval_s, size=len(events))))
    return {
        "failures": float(len(events)),
        "lost_hours": lost / 3600.0,
        "lost_fraction_single_task": lost / horizon,
        "max_loss_per_failure_s": interval_s,
    }


@experiment('checkpoint', 'Section VII-A: checkpoint performance and recovery bounds')
def render() -> str:
    """Printable checkpoint experiment."""
    bw = save_bandwidth_model()
    st = save_time_model()
    rec = recovery_loss_statistics()
    rows = (
        [[f"bw/{k}", v] for k, v in bw.items()]
        + [[f"save/{k}", v] for k, v in st.items()]
        + [[f"recovery/{k}", v] for k, v in rec.items()]
    )
    return render_table(
        ["Metric", "Value"], rows,
        title="Checkpoint manager: >10 GiB/s writes, few-second saves, "
              "<=5 min loss per failure",
    )
