"""CLI: print reproduced paper tables and figures.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments fig7 table3
    python -m repro.experiments --list
    python -m repro.experiments --perf congestion   # append a perf profile

``--perf`` enables the global :mod:`repro.perf` aggregate and prints the
combined counters/timings (flow-engine events, solver iterations, memo
hits, solve wall time) after the requested experiments run.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro import perf
from repro.experiments import (
    checkpoint_exp,
    congestion_exp,
    failures_exp,
    fig1_2_3,
    fig7,
    fig8,
    fig9,
    future_arch,
    operations_exp,
    scheduling_exp,
    storage_throughput,
    table1,
    table2,
    table3,
    table4,
)

EXPERIMENTS: Dict[str, object] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig1_2_3": fig1_2_3,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "storage": storage_throughput,
    "congestion": congestion_exp,
    "checkpoint": checkpoint_exp,
    "failures": failures_exp,
    "future": future_arch,
    "operations": operations_exp,
    "scheduling": scheduling_exp,
}


def main(argv: List[str]) -> int:
    """Entry point; returns a process exit code."""
    if "--list" in argv or "-l" in argv:
        print("\n".join(sorted(EXPERIMENTS)))
        return 0
    profile = "--perf" in argv
    if profile:
        perf.enable()
    names = [a for a in argv if not a.startswith("-")] or sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    for i, name in enumerate(names):
        if i:
            print()
        print(EXPERIMENTS[name].render())
    if profile:
        print()
        print(perf.report())
        perf.disable()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
