"""CLI: print reproduced paper tables and figures.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments fig7 table3
    python -m repro.experiments --list
    python -m repro.experiments chaos --seed 11
    python -m repro.experiments congestion --set scale=2
    python -m repro.experiments platform_week --set days=1 --set tenants=80
    python -m repro.experiments --perf congestion   # append a perf profile
    python -m repro.experiments --profile fig7      # cProfile hot spots
    python -m repro.experiments congestion \\
        --trace-out trace.json --metrics-out metrics.jsonl

Experiments self-register via the declarative
:mod:`repro.experiments.registry` (``@experiment(name, description,
telemetry=...)``); this module only imports the experiment modules so
their decorators run, then dispatches through the registry. ``--list``
is rendered from the same registry, including each experiment's
telemetry surface.

``--perf`` enables the global :mod:`repro.perf` aggregate and prints the
combined counters/timings (flow-engine events, solver iterations, memo
hits, solve wall time) after the requested experiments run.

``--profile`` runs the selected experiments under :mod:`cProfile` and
prints the 25 most expensive functions by cumulative time — the
"where did the wall clock go" view that the aggregate counters of
``--perf`` deliberately abstract away. The two flags compose.

``--trace-out`` / ``--metrics-out`` enable a :mod:`repro.telemetry`
session around the run and export what the instrumented subsystems
recorded: a Chrome/Perfetto ``trace_event`` JSON timeline of simulated
time (open it at https://ui.perfetto.dev) and a JSONL dump of every
labelled counter/gauge/histogram. See ``docs/OBSERVABILITY.md``.

``--alerts-out`` additionally attaches the streaming cluster monitor
(:mod:`repro.monitor`) to the session for the whole run and exports
every alert its detectors raised — firing/resolution sim-timestamps,
severity, entity, and detector evidence — as JSONL. Alert lifecycle
instants also land on ``alerts/<detector>`` tracks in the trace.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from typing import Dict, List, Optional

from repro import perf, telemetry
from repro.experiments import (  # noqa: F401  (imported for registration)
    chaos,
    checkpoint_exp,
    congestion_exp,
    failures_exp,
    fig1_2_3,
    fig7,
    fig8,
    fig9,
    future_arch,
    operations_exp,
    scheduling_exp,
    storage_throughput,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments import platform_week  # noqa: F401  (registration)
from repro.experiments.registry import (
    ExperimentSpec,
    RegistryError,
    parse_overrides,
    registry,
    render_listing,
)

#: Name -> spec dispatch table, built from the registry the experiment
#: modules populated at import. Kept as a module attribute because the
#: replay differ and tests resolve experiments through it.
EXPERIMENTS: Dict[str, ExperimentSpec] = registry()


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (unknown flags are an error, not ignored)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Print reproduced Fire-Flyer paper tables and figures.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help="experiments to run (default: all); see --list",
    )
    parser.add_argument(
        "--list", "-l", action="store_true",
        help="list available experiments (from the registry) and exit",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="seed override for experiments that take one (see --list)",
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        dest="overrides",
        help="typed config override for the selected experiments "
             "(repeatable; schemas in --list; unknown keys exit 2)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="print the combined repro.perf profile after the run",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 functions "
             "by cumulative time",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write a Chrome/Perfetto trace_event JSON timeline of the run",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write every recorded telemetry metric as JSONL",
    )
    parser.add_argument(
        "--telemetry-summary", action="store_true",
        help="print the human-readable telemetry digest after the run",
    )
    parser.add_argument(
        "--alerts-out", metavar="PATH",
        help="attach the streaming cluster monitor and write every alert "
             "it raises as JSONL",
    )
    return parser


def main(argv: List[str]) -> int:
    """Entry point; returns a process exit code."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse reports its own error message
        code = exc.code
        return code if isinstance(code, int) else 2
    if args.list:
        print(render_listing())
        return 0
    names = args.names or sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    if args.seed is not None:
        unseeded = [n for n in names if not EXPERIMENTS[n].seeded]
        if unseeded:
            print(
                f"--seed has no effect on: {', '.join(unseeded)}",
                file=sys.stderr,
            )
    try:
        overrides = parse_overrides(args.overrides)
        for name in names:
            EXPERIMENTS[name].check_overrides(overrides)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    collect = bool(
        args.trace_out or args.metrics_out or args.telemetry_summary
        or args.alerts_out
    )
    session: Optional[telemetry.TelemetrySession] = None
    monitor = None
    if collect:
        session = telemetry.start(trace=True)
    if args.alerts_out:
        from repro.monitor import Monitor

        monitor = Monitor(session).attach()
    if args.perf:
        perf.enable()
    profiler: Optional[cProfile.Profile] = None
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for i, name in enumerate(names):
            if i:
                print()
            spec = EXPERIMENTS[name]
            print(spec.run(
                seed=args.seed if spec.seeded else None,
                overrides=overrides,
            ))
    finally:
        if profiler is not None:
            profiler.disable()
            print()
            pstats.Stats(profiler, stream=sys.stdout) \
                .sort_stats("cumulative").print_stats(25)
        if args.perf:
            print()
            print(perf.report())
            perf.disable()
        if monitor is not None:
            monitor.finish()
            monitor.detach()
        if collect:
            telemetry.stop()
    if session is not None:
        if args.trace_out:
            n = telemetry.write_chrome_trace(args.trace_out, session)
            print(f"trace: {n} events -> {args.trace_out}", file=sys.stderr)
        if args.metrics_out:
            n = telemetry.write_metrics_jsonl(args.metrics_out, session.registry)
            print(f"metrics: {n} series -> {args.metrics_out}", file=sys.stderr)
        if args.alerts_out:
            from repro.monitor import write_alerts_jsonl

            n = write_alerts_jsonl(args.alerts_out, monitor.alerts)
            print(f"alerts: {n} -> {args.alerts_out}", file=sys.stderr)
        if args.telemetry_summary:
            print()
            print(telemetry.summary(session))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
