"""Section VI-A: keeping the computation-storage network congestion-free.

The paper's measures are evaluated together on the fluid model of a
scaled Fire-Flyer fabric carrying *mixed* traffic — HFReduce allreduce
flows between compute nodes, 3FS storage reads landing on the same
receiver nodes, and background chatter:

1. SL/VL traffic isolation on vs off (no-isolation pays the HOL-blocking
   efficiency penalty on mixed links, and HFReduce loses its VL weight),
2. static destination-spread routing vs adaptive routing (a correlated
   burst of storage flows all dodges onto the same momentarily-quiet
   spine under adaptive choice — the congestion spreading the paper
   observed),
3. request-to-send on vs off (without RTS every reader pulls from all
   storage NICs at once; the client-side incast tax is applied via the
   calibrated efficiency model, since fluid sharing cannot express
   packet loss).

The reported metrics are the *minimum HFReduce flow rate* (the straggler
that stalls a synchronous allreduce) and aggregate storage goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import telemetry
from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.experiments.storage_throughput import incast_efficiency
from repro.network import (
    Flow,
    FlowSim,
    ServiceLevel,
    TrafficClassConfig,
    two_zone_network,
)
from repro.network.routing import AdaptiveRouter, StaticRouter
from repro.units import MiB, as_gBps

RTS_WINDOW = 8
#: Without RTS a reader has every stripe's transfer outstanding at every
#: storage NIC: 4 NICs x 8 queued chunks in this scenario.
NO_RTS_CONCURRENT_SENDERS = 32


@dataclass(frozen=True)
class CongestionConfig:
    """Tunable knobs for the congestion study (CLI ``--set``)."""

    #: Fabric/flow-mix multiplier: the printed experiment uses 1; the
    #: perf benchmarks measure larger scales.
    scale: int = 1
    #: Request-to-send credit window (outstanding chunks per reader).
    rts_window: int = RTS_WINDOW
    #: Concurrent senders hitting a reader with RTS off.
    no_rts_senders: int = NO_RTS_CONCURRENT_SENDERS


def _build_fabric(scale: int = 1):
    zone0 = (
        [f"cn{i}" for i in range(60 * scale)]
        + [f"st{i}.nic0" for i in range(4 * scale)]
    )
    zone1 = (
        [f"cn{i}" for i in range(60 * scale, 120 * scale)]
        + [f"st{i}.nic1" for i in range(4 * scale)]
    )
    return two_zone_network(64 * scale, interzone_links=2,
                            zone0_hosts=zone0, zone1_hosts=zone1)


def _mixed_flows(rts: bool, scale: int = 1) -> List[Flow]:
    """Mixed traffic with deliberately shared receiver nodes."""
    flows: List[Flow] = []
    fid = 0
    # HFReduce: cross-leaf tree flows into cn40..cn51 (20 hosts per leaf,
    # so sources and receivers sit on different leaves). At scale > 1 the
    # same shape stretches proportionally across the larger zone.
    receivers = [f"cn{40 * scale + i}" for i in range(12 * scale)]
    for i, dst in enumerate(receivers):
        flows.append(Flow(f"cn{i}", dst, size=1.0,
                          sl=ServiceLevel.HFREDUCE, flow_id=fid))
        fid += 1
    # Storage reads land on the SAME receiver nodes (checkpoint loads /
    # data fetches during training — the integrated-network scenario).
    for r_idx, reader in enumerate(receivers):
        sources = (
            [f"st{r_idx % (4 * scale)}.nic0"] if rts
            else [f"st{k}.nic0" for k in range(4)]
        )
        for src in sources:
            flows.append(Flow(src, reader, size=1.0,
                              sl=ServiceLevel.STORAGE, flow_id=fid))
            fid += 1
    # Background chatter crossing the same leaves.
    for i in range(20 * scale, 26 * scale):
        flows.append(Flow(f"cn{i}", f"cn{40 * scale + (i - 20 * scale)}",
                          size=1.0, sl=ServiceLevel.OTHER, flow_id=fid))
        fid += 1
    return flows


def run_scenario(isolation: bool, routing: str, rts: bool,
                 engine: str = "vectorized",
                 scale: int = 1,
                 config: Optional[CongestionConfig] = None) -> Dict[str, float]:
    """One configuration; returns straggler and aggregate metrics.

    ``scale`` stretches the fabric and the flow mix proportionally (the
    printed experiment uses 1; the perf benchmarks measure larger scales
    where allocation cost, not fabric construction, dominates). A
    :class:`CongestionConfig` bundles the same knob plus the RTS window
    parameters for the CLI's ``--set`` path.
    """
    cfg = config or CongestionConfig(scale=scale)
    fab = _build_fabric(cfg.scale)
    router = (
        StaticRouter(fab) if routing == "static" else AdaptiveRouter(fab)
    )
    sim = FlowSim(fab, router=router,
                  qos=TrafficClassConfig(isolation=isolation), engine=engine)
    flows = _mixed_flows(rts=rts, scale=cfg.scale)
    rates = sim.instantaneous_rates(flows)
    hf = [rates[f.flow_id] for f in flows if f.sl is ServiceLevel.HFREDUCE]
    st_total = sum(
        rates[f.flow_id] for f in flows if f.sl is ServiceLevel.STORAGE
    )
    if not rts:
        # Client-side incast tax (packet loss / retransmits) on goodput.
        st_total *= incast_efficiency(cfg.no_rts_senders, cfg.rts_window)
    return {
        "hfreduce_min_GBps": as_gBps(min(hf)),
        "hfreduce_mean_GBps": as_gBps(sum(hf) / len(hf)),
        "storage_total_GBps": as_gBps(st_total),
    }


def run(config: Optional[CongestionConfig] = None) -> List[List]:
    """The production config against each degraded variant."""
    rows = []
    configs = [
        ("production (VL + static + RTS)", True, "static", True),
        ("no VL isolation", False, "static", True),
        ("adaptive routing", True, "adaptive", True),
        ("no request-to-send", True, "static", False),
        ("everything off", False, "adaptive", False),
    ]
    for name, iso, routing, rts in configs:
        m = run_scenario(iso, routing, rts, config=config)
        rows.append([name, m["hfreduce_min_GBps"], m["hfreduce_mean_GBps"],
                     m["storage_total_GBps"]])
    return rows


def emit_timeline() -> None:
    """Populate the active telemetry session with a time-domain view.

    The steady-state table above answers "how much"; this answers "when":
    with a telemetry session active it simulates the same integrated
    scenario through time — the production mixed-traffic flow set run as
    a fluid simulation (flow spans + per-link utilization samples), one
    chunked HFReduce allreduce on the DES pipeline (D2H / CPU-reduce /
    RDMA-tree / H2D stage spans), and the HAI scheduler placing the
    training and storage-heavy jobs that generate that traffic (queued /
    run / preempt spans). No-op when telemetry is off, so the printed
    experiment costs nothing extra.
    """
    if not telemetry.active():
        return
    # 1. Scheduler: the jobs whose traffic the fabric carries. The debug
    #    job is preempted by the high-priority training run mid-flight.
    from repro.hai import HAICluster, Task, TimeSharingScheduler

    sched = TimeSharingScheduler(HAICluster.two_zone(8))
    sched.submit(Task("debug", nodes_required=12, total_work=1200.0,
                      priority=0, checkpoint_interval=300.0))
    sched.run(until=300.0)
    sched.submit(Task("train-hfreduce", nodes_required=12, total_work=3600.0,
                      priority=5, checkpoint_interval=300.0))
    sched.submit(Task("ckpt-load", nodes_required=2, total_work=600.0,
                      priority=1, checkpoint_interval=300.0))
    sched.run_until_idle()
    # 2. Collectives: one gradient-bucket allreduce, chunk by chunk.
    from repro.collectives.des_pipeline import HFReduceDesSim
    from repro.collectives.primitives import AllreduceConfig

    HFReduceDesSim().run(AllreduceConfig(nbytes=32 * MiB, n_nodes=16))
    # 3. Flows: the production scenario as a fluid run with real sizes,
    #    so flow spans and link_util gauge curves share one clock.
    fab = _build_fabric()
    sim = FlowSim(fab, qos=TrafficClassConfig(isolation=True))
    flows = [
        Flow(f.src, f.dst, size=256 * MiB, sl=f.sl, flow_id=f.flow_id,
             start=0.002 * (f.flow_id % 7))
        for f in _mixed_flows(rts=True)
    ]
    sim.run(flows)


@experiment(
    "congestion",
    "Section VI-A: congestion under mixed traffic",
    telemetry=("link_util", "hfreduce_stage_s"),
    config=CongestionConfig,
)
def render(config: Optional[CongestionConfig] = None) -> str:
    """Printable congestion study."""
    out = render_table(
        ["configuration", "HFReduce straggler GB/s", "HFReduce mean GB/s",
         "storage total GB/s"],
        run(config),
        title="Section VI-A: congestion under mixed traffic "
              "(production tuning vs ablations)",
    )
    emit_timeline()
    return out
