"""Figure 8: weak scalability of DDP (VGG16) and FSDP (GPT2-medium).

(a) HaiScale DDP over HFReduce vs Torch DDP over NCCL, 32 -> 512 GPUs:
    HFReduce halves the step time and holds ~88%+ weak scaling.
(b) HaiScale FSDP vs Torch FSDP on GPT2-medium, 16 -> 128 GPUs:
    HaiScale ~95%+ scaling and roughly half Torch's step time.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.haiscale import (
    GPT2_MEDIUM,
    VGG16,
    DDPBackend,
    DDPConfig,
    DDPSimulator,
    FSDPConfig,
    FSDPSimulator,
)

DDP_GPUS = [32, 64, 128, 256, 512]
FSDP_GPUS = [16, 32, 64, 128]

PAPER = {
    "ddp_speedup": 2.0,  # "takes only half the time"
    "ddp_scaling": 0.88,
    "fsdp_speedup": 2.0,  # "reduces training time by nearly half"
    "fsdp_scaling": 0.95,
}


def run_ddp(per_gpu_batch: int = 64) -> List[Dict[str, float]]:
    """Figure 8a rows."""
    rows = []
    for gpus in DDP_GPUS:
        hf = DDPSimulator(DDPConfig(VGG16, per_gpu_batch, gpus, DDPBackend.HFREDUCE))
        nc = DDPSimulator(DDPConfig(VGG16, per_gpu_batch, gpus, DDPBackend.NCCL))
        rows.append(
            {
                "gpus": gpus,
                "haiscale_step": hf.step_time(),
                "torch_step": nc.step_time(),
                "speedup": nc.step_time() / hf.step_time(),
                "haiscale_scaling": hf.scaling_efficiency(DDP_GPUS[0]),
                "torch_scaling": nc.scaling_efficiency(DDP_GPUS[0]),
            }
        )
    return rows


def run_fsdp(per_gpu_batch: int = 8) -> List[Dict[str, float]]:
    """Figure 8b rows."""
    rows = []
    for gpus in FSDP_GPUS:
        hs = FSDPSimulator(FSDPConfig(GPT2_MEDIUM, per_gpu_batch, gpus, haiscale=True))
        th = FSDPSimulator(FSDPConfig(GPT2_MEDIUM, per_gpu_batch, gpus, haiscale=False))
        rows.append(
            {
                "gpus": gpus,
                "haiscale_step": hs.step_time(),
                "torch_step": th.step_time(),
                "speedup": th.step_time() / hs.step_time(),
                "haiscale_scaling": hs.scaling_efficiency(FSDP_GPUS[0]),
                "torch_scaling": th.scaling_efficiency(FSDP_GPUS[0]),
            }
        )
    return rows


@experiment('fig8', 'Figure 8: weak scalability of DDP and FSDP')
def render() -> str:
    """Printable Figure 8 tables."""
    a = render_table(
        ["GPUs", "HaiScale s/step", "Torch s/step", "speedup",
         "HaiScale scaling", "Torch scaling"],
        [
            [r["gpus"], r["haiscale_step"], r["torch_step"], r["speedup"],
             r["haiscale_scaling"], r["torch_scaling"]]
            for r in run_ddp()
        ],
        title="Figure 8a: VGG16 DDP — HFReduce vs Torch DDP (NCCL)",
    )
    b = render_table(
        ["GPUs", "HaiScale s/step", "Torch s/step", "speedup",
         "HaiScale scaling", "Torch scaling"],
        [
            [r["gpus"], r["haiscale_step"], r["torch_step"], r["speedup"],
             r["haiscale_scaling"], r["torch_scaling"]]
            for r in run_fsdp()
        ],
        title="Figure 8b: GPT2-medium FSDP — HaiScale vs Torch",
    )
    return a + "\n\n" + b
