"""Section VI-C: what time-sharing buys over static partitioning.

"The cluster deploying HAI Platform does not pool GPU resources... The
HAI Platform encourages users to fully utilize multiple GPUs
simultaneously for parallel training, facilitating 99% utilization."

The experiment runs the same bursty research workload — a mix of small
debug jobs, mid-size experiments, and large high-priority training runs
arriving over a simulated week — under two policies:

* **time-sharing** — the real scheduler: priority preemption with the
  checkpoint-interrupt protocol, whole-node allocation from one pool,
* **static partitioning** — the cluster is split into fixed per-team
  slices (the policy time-sharing replaces); a job only runs in its
  team's slice, idle slices cannot help busy ones.

Reported: utilization, makespan, and mean high-priority queueing delay.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.hai import HAICluster, Task, TaskState, TimeSharingScheduler

HOUR = 3600.0


def _workload(rng: random.Random) -> List[Tuple[float, Task]]:
    """A deterministic bursty week: (arrival_time, task) pairs.

    ``rng`` is the injected seeded generator (DET001): both policies must
    replay the *same* arrivals, so each caller builds its own
    ``random.Random(seed)`` rather than sharing one stream.

    Four teams; team 3 occasionally launches large high-priority runs.
    """
    arrivals: List[Tuple[float, Task]] = []
    tid = 0
    for day in range(7):
        base = day * 24 * HOUR
        # Daytime burst of small debug jobs from every team.
        for k in range(16):
            arrivals.append((
                base + 8 * HOUR + rng.uniform(0, 8 * HOUR),
                Task(f"dbg{tid}", nodes_required=1,
                     total_work=rng.uniform(0.5, 2.0) * HOUR,
                     priority=0, checkpoint_interval=300.0),
            ))
            tid += 1
        # A few mid-size experiments.
        for k in range(4):
            arrivals.append((
                base + rng.uniform(0, 24 * HOUR),
                Task(f"exp{tid}", nodes_required=4,
                     total_work=rng.uniform(4, 10) * HOUR,
                     priority=1, checkpoint_interval=300.0),
            ))
            tid += 1
    # Two large high-priority training runs mid-week.
    for day in (2, 4):
        arrivals.append((
            day * 24 * HOUR + 9 * HOUR,
            Task(f"big{tid}", nodes_required=12,
                 total_work=20 * HOUR, priority=5,
                 checkpoint_interval=300.0),
        ))
        tid += 1
    arrivals.sort(key=lambda p: p[0])
    return arrivals


def _run_time_sharing(n_nodes: int, seed: int) -> Dict[str, float]:
    sched = TimeSharingScheduler(HAICluster.two_zone(n_nodes // 2))
    waits = []
    for when, task in _workload(random.Random(seed)):
        sched.run(until=when)
        sched.submit(task)
    sched.run_until_idle()
    for t in sched.tasks.values():
        if t.priority >= 5 and t.started_at is not None:
            submit_time = next(
                e.time for e in sched.events
                if e.kind == "submit" and e.task_id == t.task_id
            )
            waits.append(t.started_at - submit_time)
    done = sum(1 for t in sched.tasks.values() if t.state is TaskState.FINISHED)
    return {
        "utilization": sched.utilization(),
        "makespan_hours": sched.now / HOUR,
        "high_prio_wait_hours": (sum(waits) / len(waits) / HOUR) if waits else 0.0,
        "jobs_finished": float(done),
    }


def _run_static_partition(n_nodes: int, seed: int, n_teams: int = 4) -> Dict[str, float]:
    """Fixed slices: one independent scheduler per team's partition."""
    per_team = n_nodes // n_teams
    scheds = [
        TimeSharingScheduler(HAICluster.two_zone(max(per_team // 2, 1)))
        for _ in range(n_teams)
    ]
    waits = []
    for i, (when, task) in enumerate(_workload(random.Random(seed))):
        team = i % n_teams
        s = scheds[team]
        if task.nodes_required > s.cluster.size:
            # The slice cannot host the full job: it runs shrunken on the
            # whole slice, stretched proportionally (same node-seconds).
            stretch = task.nodes_required / s.cluster.size
            task = Task(task.task_id, s.cluster.size,
                        task.total_work * stretch,
                        task.priority,
                        checkpoint_interval=task.checkpoint_interval)
        s.run(until=when)
        s.submit(task)
    for s in scheds:
        s.run_until_idle()
    total_busy = sum(s.utilization() * s.now * s.cluster.size for s in scheds)
    horizon = max(s.now for s in scheds)
    for s in scheds:
        for t in s.tasks.values():
            if t.priority >= 5 and t.started_at is not None:
                submit_time = next(
                    e.time for e in s.events
                    if e.kind == "submit" and e.task_id == t.task_id
                )
                waits.append(t.started_at - submit_time)
    done = sum(
        1 for s in scheds for t in s.tasks.values()
        if t.state is TaskState.FINISHED
    )
    return {
        "utilization": total_busy / (horizon * n_nodes),
        "makespan_hours": horizon / HOUR,
        "high_prio_wait_hours": (sum(waits) / len(waits) / HOUR) if waits else 0.0,
        "jobs_finished": float(done),
    }


def run(n_nodes: int = 16, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Both policies on the same workload."""
    return {
        "time_sharing": _run_time_sharing(n_nodes, seed),
        "static_partition": _run_static_partition(n_nodes, seed),
    }


@experiment('scheduling', 'Section VI-C: time-sharing vs static partitioning', telemetry=('sched_events_total',))
def render() -> str:
    """Printable scheduling comparison."""
    r = run()
    metrics = sorted(r["time_sharing"])
    return render_table(
        ["metric", "time-sharing (HAI)", "static partition"],
        [[m, r["time_sharing"][m], r["static_partition"][m]] for m in metrics],
        title="Section VI-C: time-sharing vs static partitioning "
              "(one simulated week)",
    )
