"""Section VI-B2: 3FS aggregate read throughput (8 TB/s on 180 nodes).

Two layers of reproduction:

* **capacity analysis** — the paper's own arithmetic: 180 storage nodes x
  2 x 200 Gbps NICs = 9 TB/s outbound line rate; 2,880 NVMe SSDs supply
  far more than that, so the network is the binding constraint; the
  production system sustains 8 TB/s (~89% of line rate) thanks to
  request-to-send incast control, traffic isolation, and balanced chain
  placement.
* **flow-level demonstration** — a scaled-down Fire-Flyer fabric with
  every compute node reading from RTS-limited sets of storage NICs; the
  max-min allocation shows the design is balanced (every storage NIC
  near-saturated, fair across clients). Incast *loss* is a packet-level
  phenomenon invisible to fluid models, so the no-RTS case applies a
  documented efficiency penalty calibrated to the paper's motivation
  ("required to achieve sustainable high throughput").
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.registry import experiment
from repro.errors import FS3Error
from repro.experiments.fmt import render_table
from repro.hardware.node import storage_node
from repro.network import Flow, FlowSim, ServiceLevel, fire_flyer_network
from repro.network.routing import EcmpRouter
from repro.units import as_gBps, gbps

#: Fraction of line rate the RTS-controlled data path sustains end to end
#: (RDMA WRITE+SEND handshake, chunk boundaries, placement imbalance).
RTS_PROTOCOL_EFFICIENCY = 8.0 / 9.0

PAPER = {
    "outbound_line_rate_TBps": 9.0,
    "achieved_read_TBps": 8.0,
}


def incast_efficiency(senders_per_client: int, window: int,
                      alpha: float = 0.08) -> float:
    """Goodput efficiency under client-side incast without RTS.

    Beyond the admission window, concurrent senders overflow the client
    NIC's credit/buffer budget; the excess triggers stalls and
    retransmissions. Modelled as ``1 / (1 + alpha * excess/window)`` —
    a fluid-level proxy for the packet-level collapse RTS prevents.
    """
    if senders_per_client < 0 or window < 1:
        raise FS3Error("invalid incast parameters")
    excess = max(0, senders_per_client - window)
    return 1.0 / (1.0 + alpha * excess / window)


def capacity_analysis(n_storage_nodes: int = 180,
                      rts_window: int = 8,
                      n_clients: int = 1200) -> Dict[str, float]:
    """The paper's throughput accounting, from the hardware specs."""
    node = storage_node()
    nic_supply = n_storage_nodes * node.network_bw
    ssd_supply = n_storage_nodes * node.ssd_count * node.ssd.read_bw
    senders_per_client = n_storage_nodes * node.nic_count  # all-to-all reads
    with_rts = min(nic_supply, ssd_supply) * RTS_PROTOCOL_EFFICIENCY
    without_rts = (
        min(nic_supply, ssd_supply)
        * incast_efficiency(senders_per_client, rts_window)
    )
    return {
        "nic_supply_TBps": nic_supply / 1e12,
        "ssd_supply_TBps": ssd_supply / 1e12,
        "achieved_with_rts_TBps": with_rts / 1e12,
        "achieved_without_rts_TBps": without_rts / 1e12,
    }


def flow_simulation(
    gpu_nodes: int = 120,
    storage_nodes: int = 18,
    reads_per_client: int = 4,
    engine: str = "vectorized",
) -> Dict[str, float]:
    """Steady-state fluid read pattern on a scaled-down fabric.

    Every compute node reads from ``reads_per_client`` storage NICs
    (RTS-windowed), spread round-robin as the chain tables do. Reports
    aggregate throughput, per-storage-NIC utilization, and client
    fairness. ``engine`` selects the :class:`FlowSim` allocation engine
    (the perf benchmarks compare ``vectorized`` against ``reference``).
    """
    fab = fire_flyer_network(gpu_nodes=gpu_nodes, storage_nodes=storage_nodes)
    sim = FlowSim(fab, router=EcmpRouter(fab), engine=engine)
    storage_nics = [h for h in fab.hosts if h.startswith("st")]
    clients = [h for h in fab.hosts if h.startswith("cn")]
    flows: List[Flow] = []
    for ci, client in enumerate(clients):
        # Chain striping spreads each client's reads over distinct NICs,
        # preferring its own zone (dual-homed storage). Flow ids are
        # assigned deterministically so ECMP hashing (and therefore the
        # reported balance) is reproducible run to run.
        zone = fab.zone_of(client)
        local = [s for s in storage_nics if fab.zone_of(s) == zone]
        for k in range(reads_per_client):
            idx = ci * reads_per_client + k
            flows.append(
                Flow(src=local[idx % len(local)], dst=client, size=1.0,
                     sl=ServiceLevel.STORAGE, flow_id=idx)
            )
    rates = sim.instantaneous_rates(flows)
    aggregate = sum(rates.values())
    # Per-storage-NIC outbound load.
    per_nic: Dict[str, float] = {s: 0.0 for s in storage_nics}
    for f in flows:
        per_nic[f.src] += rates[f.flow_id]
    nic_line = gbps(200.0)
    utils = [v / nic_line for v in per_nic.values()]
    # Per-client receive rates for fairness.
    per_client: Dict[str, float] = {c: 0.0 for c in clients}
    for f in flows:
        per_client[f.dst] += rates[f.flow_id]
    rc = sorted(per_client.values())
    return {
        "aggregate_TBps": aggregate / 1e12,
        "line_rate_TBps": len(storage_nics) * nic_line / 1e12,
        "mean_nic_utilization": sum(utils) / len(utils),
        "min_nic_utilization": min(utils),
        "client_fairness": rc[0] / rc[-1] if rc[-1] > 0 else 1.0,
    }


@experiment('storage', 'Section VI-B2: 3FS aggregate read throughput')
def render() -> str:
    """Printable throughput experiment."""
    cap = capacity_analysis()
    sim = flow_simulation()
    a = render_table(
        ["Metric", "Value"],
        [
            ["NIC outbound supply (TB/s)", cap["nic_supply_TBps"]],
            ["SSD read supply (TB/s)", cap["ssd_supply_TBps"]],
            ["Achieved with RTS (TB/s)", cap["achieved_with_rts_TBps"]],
            ["Without RTS (incast, TB/s)", cap["achieved_without_rts_TBps"]],
            ["Paper achieved (TB/s)", PAPER["achieved_read_TBps"]],
        ],
        title="3FS read throughput: 180 nodes, 360 x 200Gbps NICs",
    )
    b = render_table(
        ["Metric", "Value"],
        [[k, v] for k, v in sim.items()],
        title="Flow-level demonstration (scaled fabric)",
    )
    return a + "\n\n" + b
