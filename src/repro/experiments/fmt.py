"""Tiny fixed-width table renderer for experiment output."""

from __future__ import annotations

from typing import Any, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in r] for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
