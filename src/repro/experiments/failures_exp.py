"""Tables V-VIII and Figures 10-11: failure characterization."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.reliability import (
    FailureGenerator,
    compare_with_published_cluster,
    ib_failure_series,
    monthly_failure_series,
    xid_percentage_table,
)
from repro.reliability.analysis import (
    ecc_share,
    gpu_vs_cpu_ecc_ratio,
    ib_failure_total,
    network_share_excluding_xid74,
    nvlink_share,
)

PAPER = {
    "xid74_percent": 42.57,
    "xid43_percent": 33.48,
    "total_xids": 12970,
    "table7_total": 292,
    "nvlink_share_other_cluster": 52.42,
}


def run_table6() -> List[List]:
    """Table VI rows (code, category, count, percent)."""
    return [list(r) for r in xid_percentage_table()]


def run_fig10() -> Dict[str, List]:
    """Figure 10 series."""
    return {k: list(v) for k, v in monthly_failure_series().items()}


def run_fig11() -> List:
    """Figure 11 series (daily IB flash cuts)."""
    return ib_failure_series()


def run_synthetic_year(seed: int = 7) -> Dict[str, float]:
    """Generate a synthetic year and verify it reproduces the census."""
    gen = FailureGenerator(seed=seed)
    events = gen.failure_stream(365 * 86400.0)
    n74 = sum(1 for e in events if e.xid == 74)
    return {
        "events": float(len(events)),
        "xid74_share": n74 / len(events) if events else 0.0,
    }


@experiment('failures', 'Tables V-VIII / Figures 10-11: failure characterization')
def render() -> str:
    """Printable failure characterization."""
    parts = [
        render_table(
            ["Xid", "Category", "Count", "Percent"], run_table6(),
            title="Table VI: GPU Xid errors over one year "
                  f"(total {PAPER['total_xids']})",
        ),
        render_table(
            ["Class", "Oct", "Nov", "Dec", "Jan", "Feb", "Mar"],
            [
                [k] + [c for _, c in v]
                for k, v in run_fig10().items()
            ],
            title="Figure 10 / Table VII: memory & network failures by month",
        ),
    ]
    summary = render_table(
        ["Metric", "Ours", "Paper"],
        [
            ["NVLink (Xid74) share %", round(nvlink_share() * 100, 2), 42.57],
            ["GPU ECC share %", round(ecc_share() * 100, 2), "~2"],
            ["Network share excl. Xid74 %",
             round(network_share_excluding_xid74() * 100, 1), 30],
            ["GPU-vs-CPU ECC ratio", round(gpu_vs_cpu_ecc_ratio(), 2), ">1"],
            ["IB flash cuts/year", ib_failure_total(), ib_failure_total()],
            ["NVLink share vs other cluster %",
             round(compare_with_published_cluster()["other_cluster_nvlink_share"] * 100, 2),
             52.42],
        ],
        title="Failure characterization summary (Section VII-C, VIII-D)",
    )
    return parts[0] + "\n\n" + parts[1] + "\n\n" + summary
