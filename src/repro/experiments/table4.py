"""Table IV: 3FS storage node hardware details."""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.hardware.node import storage_node
from repro.units import GiB


def run() -> List[Tuple[str, str]]:
    """Rows of (attribute, value) from the spec."""
    node = storage_node()
    return [
        ("CPU", f"{node.cpu_sockets} x {node.cpu.name}"),
        ("Memory", f"{node.memory_bytes // GiB}GB "
                   f"{node.cpu.memory_channels}-channels "
                   f"DDR4-{node.cpu.memory_speed_mts}"),
        ("NICs", f"{node.nic_count} x {node.nic.name}"),
        ("Data SSDs", f"{node.ssd_count} x "
                      f"{node.ssd.capacity_bytes / 1e12:.2f}TB "
                      f"PCIe {node.ssd.pcie_gen}.0x{node.ssd.pcie_lanes}"),
    ]


@experiment('table4', 'Table IV: 3FS storage node hardware details')
def render() -> str:
    """Printable Table IV."""
    return render_table(
        ["", "Storage Node"], run(),
        title="Table IV: Storage Node Hardware Details",
    )
