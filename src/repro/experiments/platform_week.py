"""The platform week: the whole co-designed stack, one simulated week.

Every prior experiment exercises one subsystem; this one runs the
*platform* — the thing the paper actually operates. A seeded synthetic
multi-tenant workload (Poisson arrivals, Weibull heavy-tailed service
times, diurnal inference traffic) is driven through the
:class:`~repro.hai.TimeSharingScheduler` on a two-zone fabric whose
training rings, MoE EP all-to-all, checkpoint shards, and 3FS-KV reads
run on the warm-started :class:`~repro.network.FlowSim` — while the
:func:`~repro.faults.weekly_profile` failure mix is injected live and
the streaming :class:`~repro.monitor.Monitor` closes the drain loop.

The output is an SLO scorecard: queue-wait quantiles, per-tenant
goodput, and cost per served token. Same seed, same scorecard —
byte-identical — which is what lets the replay certificate cover a
week-long full-stack run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.fmt import render_table
from repro.experiments.registry import experiment
from repro.platform import PlatformSim, PlatformWeek, WorkloadConfig
from repro.units import HOUR, MINUTE


@dataclass(frozen=True)
class PlatformConfig:
    """Tunable knobs for the platform week (CLI ``--set``, see ``--list``)."""

    #: Simulated horizon in days (7 = the paper's operational week).
    days: float = 7.0
    #: Tenants submitting training jobs.
    tenants: int = 96
    #: Compute nodes per zone (whole-node allocation).
    nodes_per_zone: int = 32
    #: Mean training-job arrivals per tenant per week.
    jobs_per_tenant_week: float = 7.0
    #: Widest job in nodes.
    max_nodes: int = 8
    #: Fraction of jobs training MoE models (EP all-to-all traffic).
    moe_fraction: float = 0.25
    #: Scheduler/monitor tick and fabric-epoch grain (simulated seconds).
    tick_s: float = MINUTE
    epoch_s: float = HOUR
    #: Switch links the synthetic ``link_util`` feed watches.
    watched_links: int = 8


def build_sim(config: Optional[PlatformConfig] = None) -> PlatformSim:
    """A :class:`PlatformSim` from the experiment's ``--set`` surface."""
    cfg = config or PlatformConfig()
    return PlatformSim(
        workload=WorkloadConfig(
            tenants=cfg.tenants,
            nodes_per_zone=cfg.nodes_per_zone,
            jobs_per_tenant_week=cfg.jobs_per_tenant_week,
            max_nodes=cfg.max_nodes,
            moe_fraction=cfg.moe_fraction,
        ),
        tick_s=cfg.tick_s,
        epoch_s=cfg.epoch_s,
        watched_links=cfg.watched_links,
    )


def run_week(seed: int, config: Optional[PlatformConfig] = None) -> PlatformWeek:
    """One simulated week under the given seed and config."""
    cfg = config or PlatformConfig()
    return build_sim(cfg).run(seed=seed, days=cfg.days)


def _tenant_rows(week: PlatformWeek, worst_n: int = 5) -> List[List]:
    by_goodput = sorted(
        week.scorecard.tenants, key=lambda t: (t.goodput, -t.tenant)
    )
    rows = []
    for t in by_goodput[:worst_n]:
        rows.append([
            f"t{t.tenant:03d}",
            t.jobs,
            t.finished,
            t.goodput,
            t.mean_wait_s / MINUTE,
        ])
    return rows


@experiment(
    "platform_week",
    "Multi-tenant week: full stack under churn, faults, and diurnal load",
    telemetry=("task_queue_wait_s", "faults_injected", "link_util"),
    seeded=True,
    config=PlatformConfig,
)
def render(seed: int = 7, config: Optional[PlatformConfig] = None) -> str:
    """Printable platform week."""
    cfg = config or PlatformConfig()
    week = run_week(seed, cfg)
    card = week.scorecard
    parts = [
        render_table(
            ["workload", "value"],
            [
                ["days simulated", week.days],
                ["tenants", len(card.tenants)],
                ["jobs submitted", card.jobs_submitted],
                ["jobs finished", card.jobs_finished],
                ["completion rate", card.completion_rate],
                ["tokens served", card.tokens_served],
            ],
            title=(
                f"Platform week, seed {seed}: {cfg.tenants} tenants on "
                f"2x{cfg.nodes_per_zone} nodes, "
                f"{week.ticks} ticks / {week.epochs} fabric epochs"
            ),
        ),
        render_table(
            ["SLO", "value"],
            [
                ["queue wait p50 (min)", card.queue_wait_p50_s / MINUTE],
                ["queue wait p99 (min)", card.queue_wait_p99_s / MINUTE],
                ["queue wait mean (min)", card.queue_wait_mean_s / MINUTE],
                ["goodput mean", card.goodput_mean],
                ["goodput worst", card.goodput_worst],
                ["worst tenant", f"t{card.worst_tenant:03d}"],
                ["cost per Mtoken ($)", card.cost_per_token * 1e6],
            ],
            title="Scorecard (queue waits censored at the horizon)",
        ),
        render_table(
            ["tenant", "jobs", "finished", "goodput", "mean wait (min)"],
            _tenant_rows(week),
            title="Worst tenants by goodput",
        ),
        render_table(
            ["fabric", "value"],
            [
                ["bytes carried", week.bytes_carried],
                ["training ring GB/s (mean)", week.training_gbps_mean],
                ["training ring GB/s (min)", week.training_gbps_min],
                ["link events applied", week.net_link_events],
                ["flows rerouted live", week.net_reroutes],
                ["flows drained (no path)", week.net_drains],
            ],
            title="Fabric epochs (warm engine, faults applied in-place)",
        ),
        render_table(
            ["closed loop", "value"],
            [["faults: " + k, float(v)] for k, v in week.fault_counts.items()]
            + [
                ["alerts fired", week.alerts_fired],
                ["alerts resolved", week.alerts_resolved],
                ["monitor drains", week.drains],
                ["monitor undrains", week.undrains],
                ["tasks displaced by drains", week.displaced],
                ["scheduler preemptions", week.preemptions],
                ["scheduler crashes", week.crashes],
            ],
            title="Injected faults vs the monitor's closed loop",
        ),
    ]
    return "\n\n".join(parts)
