"""Table II: A100 PCIe vs DGX-A100 performance / cost / power."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.registry import experiment
from repro.costmodel.capex import gemm_cost_comparison
from repro.experiments.fmt import render_table

#: Published values (Table II) for EXPERIMENTS.md comparison.
PAPER = {
    "tf32": (107, 131),
    "fp16": (220, 263),
    "relative_performance": (0.83, 1.0),
    "node_relative_price": (0.60, 1.0),
    "cost_performance_ratio": (1.38, 1.0),
    "power_watts": (2500, 4200),
}


def run() -> List[List]:
    """Metric rows: [name, ours, dgx]."""
    ours, dgx = gemm_cost_comparison()
    return [
        ["TF32 GEMM (TFLOPS/GPU)", ours.tf32_tflops, dgx.tf32_tflops],
        ["FP16 GEMM (TFLOPS/GPU)", ours.fp16_tflops, dgx.fp16_tflops],
        ["Relative Performance", round(ours.relative_performance, 2),
         round(dgx.relative_performance, 2)],
        ["Node Relative Price", ours.node_relative_price, dgx.node_relative_price],
        ["Cost-Performance Ratio", round(ours.cost_performance_ratio, 2),
         round(dgx.cost_performance_ratio, 2)],
        ["Power Consumption (Watts)", ours.power_watts, dgx.power_watts],
    ]


@experiment('table2', 'Table II: A100 PCIe vs DGX-A100 performance/cost/power')
def render() -> str:
    """Printable Table II."""
    return render_table(
        ["", "Our Arch", "DGX Arch"], run(),
        title="Table II: A100 PCIe Compared to DGX-A100",
    )
