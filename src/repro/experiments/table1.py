"""Table I: server hardware details — our PCIe arch vs DGX-A100."""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.hardware.node import dgx_a100_node, fire_flyer_node
from repro.units import GiB


def run() -> List[Tuple[str, str, str]]:
    """Rows of (attribute, our arch, DGX-A100) derived from the specs."""
    ours = fire_flyer_node()
    dgx = dgx_a100_node()
    def describe(node):
        return {
            "CPU": f"{node.cpu_sockets} x {node.cpu.name}",
            "Memory": f"{node.memory_bytes // GiB}GB "
                      f"{node.cpu.memory_channels * node.cpu_sockets}-channels "
                      f"DDR4-{node.cpu.memory_speed_mts}",
            "GPU": f"{node.gpu_count} x {node.gpu.name}",
            "NICs": f"{node.nic_count} x {node.nic.name}",
            "NVLINK": (
                "600 GB/s among all 8 GPUs" if node.nvlink_all_to_all
                else "600 GB/s between paired GPUs (bridge retrofit)"
                if node.nvlink_pairs else "optional bridge (reserved in design)"
            ),
        }

    a, b = describe(ours), describe(dgx)
    return [(k, a[k], b[k]) for k in a]


@experiment('table1', 'Table I: server hardware — PCIe arch vs DGX-A100')
def render() -> str:
    """Printable Table I."""
    return render_table(
        ["", "Our PCIe Arch", "DGX-A100"], run(),
        title="Table I: Server Hardware Details",
    )
