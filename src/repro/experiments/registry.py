"""Declarative experiment registry.

Experiments self-register with the :func:`experiment` decorator instead
of being string-dispatched from a hand-maintained table in
``__main__``::

    @experiment("chaos", "Weekly failure mix vs checkpoint cadence",
                telemetry=("faults_injected", "recovery_time_s"),
                seeded=True)
    def render(seed: int = 7) -> str: ...

The CLI builds its dispatch table and ``--list`` output from
:func:`registry`, the replay differ resolves names through the same
table, and a spec records whether its renderer accepts a ``--seed``
override and which telemetry series a run populates — so the listing
doubles as documentation of the observable surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError


class RegistryError(ReproError):
    """Bad experiment registration or lookup."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: a name, a renderer, and its metadata."""

    name: str
    description: str
    render: Callable[..., str]
    module: str
    telemetry: Tuple[str, ...] = ()  # metric series a run populates
    seeded: bool = False  # renderer accepts render(seed=...)

    def run(self, seed: Optional[int] = None) -> str:
        """Render, forwarding ``seed`` when the experiment takes one."""
        if seed is not None:
            if not self.seeded:
                raise RegistryError(
                    f"experiment {self.name!r} does not take a seed"
                )
            return self.render(seed=seed)
        return self.render()


_REGISTRY: Dict[str, ExperimentSpec] = {}


def experiment(
    name: str,
    description: str,
    telemetry: Tuple[str, ...] = (),
    seeded: bool = False,
) -> Callable[[Callable[..., str]], Callable[..., str]]:
    """Registration decorator for ``render`` callables."""

    def decorate(fn: Callable[..., str]) -> Callable[..., str]:
        register(ExperimentSpec(
            name=name,
            description=description,
            render=fn,
            module=fn.__module__,
            telemetry=tuple(telemetry),
            seeded=seeded,
        ))
        return fn

    return decorate


def register(spec: ExperimentSpec) -> None:
    """Add a spec; duplicate names are a programming error."""
    if spec.name in _REGISTRY:
        raise RegistryError(
            f"experiment {spec.name!r} already registered "
            f"(by {_REGISTRY[spec.name].module})"
        )
    _REGISTRY[spec.name] = spec


def registry() -> Dict[str, ExperimentSpec]:
    """Snapshot of the registered experiments, keyed by name."""
    return dict(_REGISTRY)


def get(name: str) -> ExperimentSpec:
    """Look up one experiment."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(f"unknown experiment {name!r}")


def render_listing() -> str:
    """The ``--list`` text: name, description, telemetry surface."""
    lines: List[str] = []
    width = max((len(n) for n in _REGISTRY), default=0)
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]
        line = f"{name:<{width}}  {spec.description}"
        extras = []
        if spec.seeded:
            extras.append("--seed")
        if spec.telemetry:
            extras.append("telemetry: " + ", ".join(spec.telemetry))
        if extras:
            line += f"  [{'; '.join(extras)}]"
        lines.append(line)
    return "\n".join(lines)
