"""Declarative experiment registry.

Experiments self-register with the :func:`experiment` decorator instead
of being string-dispatched from a hand-maintained table in
``__main__``::

    @experiment("chaos", "Weekly failure mix vs checkpoint cadence",
                telemetry=("faults_injected", "recovery_time_s"),
                seeded=True, config=ChaosConfig)
    def render(seed: int = 7, config: ChaosConfig | None = None) -> str: ...

The CLI builds its dispatch table and ``--list`` output from
:func:`registry`, the replay differ resolves names through the same
table, and a spec records whether its renderer accepts a ``--seed``
override and which telemetry series a run populates — so the listing
doubles as documentation of the observable surface.

Experiments with tunable knobs attach a frozen *config dataclass* via
``config=``. The CLI's ``--set key=value`` overrides are coerced to the
declared field types (bool/int/float/str) and materialised into one
config instance passed to the renderer as ``config=``; an unknown key or
uncoercible value raises :class:`RegistryError`, which the CLI maps to
exit 2. ``--set seed=N`` is accepted for any seeded experiment, config
dataclass or not, so the override surface is uniform across the
registry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, get_type_hints


from repro.errors import ReproError


class RegistryError(ReproError):
    """Bad experiment registration, lookup, or config override."""


_BOOL_TRUE = frozenset({"1", "true", "yes", "on"})
_BOOL_FALSE = frozenset({"0", "false", "no", "off"})


def parse_overrides(pairs: List[str]) -> Dict[str, str]:
    """``KEY=VALUE`` strings (from ``--set``) into an override mapping."""
    out: Dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise RegistryError(
                f"malformed --set {pair!r}: expected KEY=VALUE"
            )
        out[key] = value
    return out


def coerce_value(name: str, typ: type, raw: str):
    """Coerce one raw override string to a config field's declared type."""
    if typ is bool:
        low = raw.strip().lower()
        if low in _BOOL_TRUE:
            return True
        if low in _BOOL_FALSE:
            return False
        raise RegistryError(
            f"override {name}={raw!r}: expected a bool "
            f"(true/false/1/0/yes/no/on/off)"
        )
    if typ is int:
        try:
            return int(raw)
        except ValueError:
            raise RegistryError(f"override {name}={raw!r}: expected an int")
    if typ is float:
        try:
            return float(raw)
        except ValueError:
            raise RegistryError(f"override {name}={raw!r}: expected a float")
    if typ is str:
        return raw
    raise RegistryError(
        f"override {name}: unsupported config field type {typ!r}"
    )


def config_fields(cls: type) -> List[Tuple[str, type, object]]:
    """``(name, type, default)`` triples for a config dataclass."""
    if not dataclasses.is_dataclass(cls):
        raise RegistryError(f"config {cls!r} is not a dataclass")
    hints = get_type_hints(cls)
    return [
        (f.name, hints[f.name], f.default)
        for f in dataclasses.fields(cls)
    ]


def build_config(cls: type, overrides: Mapping[str, str]):
    """A config instance with typed overrides applied over the defaults."""
    fields = {name: typ for name, typ, _ in config_fields(cls)}
    unknown = sorted(set(overrides) - set(fields))
    if unknown:
        raise RegistryError(
            f"unknown config key(s): {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(fields))})"
        )
    kwargs = {
        key: coerce_value(key, fields[key], raw)
        for key, raw in overrides.items()
    }
    return cls(**kwargs)


def render_schema(cls: type) -> str:
    """One-line ``--set`` schema for a config dataclass."""
    parts = []
    for name, typ, default in config_fields(cls):
        parts.append(f"{name}:{typ.__name__}={default}")
    return "  ".join(parts)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: a name, a renderer, and its metadata."""

    name: str
    description: str
    render: Callable[..., str]
    module: str
    telemetry: Tuple[str, ...] = ()  # metric series a run populates
    seeded: bool = False  # renderer accepts render(seed=...)
    config: Optional[type] = None  # config dataclass, render(config=...)

    def check_overrides(self, overrides: Mapping[str, str]) -> None:
        """Validate ``--set`` keys/values without running the experiment."""
        ov = dict(overrides)
        if "seed" in ov:
            raw = ov.pop("seed")
            if not self.seeded:
                raise RegistryError(
                    f"experiment {self.name!r} does not take a seed"
                )
            coerce_value("seed", int, raw)
        if ov:
            if self.config is None:
                raise RegistryError(
                    f"experiment {self.name!r} has no config; "
                    f"unknown key(s): {', '.join(sorted(ov))}"
                )
            build_config(self.config, ov)

    def run(
        self,
        seed: Optional[int] = None,
        overrides: Optional[Mapping[str, str]] = None,
    ) -> str:
        """Render, forwarding ``seed`` and typed ``--set`` overrides."""
        ov = dict(overrides or {})
        if "seed" in ov:
            raw = ov.pop("seed")
            if not self.seeded:
                raise RegistryError(
                    f"experiment {self.name!r} does not take a seed"
                )
            seed = coerce_value("seed", int, raw)
        kwargs: Dict[str, object] = {}
        if ov:
            if self.config is None:
                raise RegistryError(
                    f"experiment {self.name!r} has no config; "
                    f"unknown key(s): {', '.join(sorted(ov))}"
                )
            kwargs["config"] = build_config(self.config, ov)
        if seed is not None:
            if not self.seeded:
                raise RegistryError(
                    f"experiment {self.name!r} does not take a seed"
                )
            kwargs["seed"] = seed
        return self.render(**kwargs)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def experiment(
    name: str,
    description: str,
    telemetry: Tuple[str, ...] = (),
    seeded: bool = False,
    config: Optional[type] = None,
) -> Callable[[Callable[..., str]], Callable[..., str]]:
    """Registration decorator for ``render`` callables."""
    if config is not None:
        config_fields(config)  # validate the schema at registration time

    def decorate(fn: Callable[..., str]) -> Callable[..., str]:
        register(ExperimentSpec(
            name=name,
            description=description,
            render=fn,
            module=fn.__module__,
            telemetry=tuple(telemetry),
            seeded=seeded,
            config=config,
        ))
        return fn

    return decorate


def register(spec: ExperimentSpec) -> None:
    """Add a spec; duplicate names are a programming error."""
    if spec.name in _REGISTRY:
        raise RegistryError(
            f"experiment {spec.name!r} already registered "
            f"(by {_REGISTRY[spec.name].module})"
        )
    _REGISTRY[spec.name] = spec


def registry() -> Dict[str, ExperimentSpec]:
    """Snapshot of the registered experiments, keyed by name."""
    return dict(_REGISTRY)


def get(name: str) -> ExperimentSpec:
    """Look up one experiment."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(f"unknown experiment {name!r}")


def render_listing() -> str:
    """The ``--list`` text: name, description, telemetry, config schema."""
    lines: List[str] = []
    width = max((len(n) for n in _REGISTRY), default=0)
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]
        line = f"{name:<{width}}  {spec.description}"
        extras = []
        if spec.seeded:
            extras.append("--seed")
        if spec.telemetry:
            extras.append("telemetry: " + ", ".join(spec.telemetry))
        if extras:
            line += f"  [{'; '.join(extras)}]"
        lines.append(line)
        if spec.config is not None:
            lines.append(f"{'':<{width}}  --set {render_schema(spec.config)}")
    return "\n".join(lines)
