"""Figure 9: strong scalability of LLM training on Fire-Flyer 2.

(a) LLaMA-13B, seq 2048, global batch 4096, pipeline parallel 4:
    64 GPUs -> 64.118 s/step; 512 GPUs -> 9.717 s/step (91% efficiency).
(b) DeepSeekMoE-16B, seq 4096, global batch 4608, pipeline parallel 10:
    40 GPUs -> 79.615 s; 320 -> 10.71 s (92.92%); 640 -> 6.535 s (76.14%).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.haiscale import DEEPSEEK_MOE_16B, LLAMA_13B
from repro.haiscale.planner import ParallelPlan, plan_training

LLAMA_GPUS = [64, 128, 256, 512]
MOE_GPUS = [40, 80, 160, 320, 640]

PAPER = {
    "llama": {64: 64.118, 512: 9.717},
    "llama_efficiency": 0.91,
    "moe": {40: 79.615, 320: 10.71, 640: 6.535},
    "moe_efficiency_320": 0.9292,
    "moe_efficiency_640": 0.7614,
}


def run_llama(gpu_counts: List[int] = LLAMA_GPUS) -> List[Dict[str, float]]:
    """Figure 9a rows: LLaMA-13B step times."""
    rows = []
    base = None
    for gpus in gpu_counts:
        est = plan_training(
            LLAMA_13B, ParallelPlan(world_size=gpus, pp=4),
            global_batch=4096, seq_len=2048,
        )
        if base is None:
            base = (gpus, est.step_time)
        eff = base[1] / (est.step_time * gpus / base[0])
        rows.append(
            {
                "gpus": gpus,
                "step_time": est.step_time,
                "efficiency": eff,
                "bubble_fraction": est.bubble_fraction,
                "paper_step_time": PAPER["llama"].get(gpus, float("nan")),
            }
        )
    return rows


def run_moe(gpu_counts: List[int] = MOE_GPUS) -> List[Dict[str, float]]:
    """Figure 9b rows: DeepSeekMoE-16B step times."""
    rows = []
    base = None
    for gpus in gpu_counts:
        est = plan_training(
            DEEPSEEK_MOE_16B, ParallelPlan(world_size=gpus, pp=10, ep=8),
            global_batch=4608, seq_len=4096, compute_efficiency=0.5,
            grad_bytes=4, allreduce_overlap=0.0,
        )
        if base is None:
            base = (gpus, est.step_time)
        eff = base[1] / (est.step_time * gpus / base[0])
        rows.append(
            {
                "gpus": gpus,
                "step_time": est.step_time,
                "efficiency": eff,
                "bubble_fraction": est.bubble_fraction,
                "paper_step_time": PAPER["moe"].get(gpus, float("nan")),
            }
        )
    return rows


@experiment('fig9', 'Figure 9: strong scalability of LLM training')
def render() -> str:
    """Printable Figure 9 tables."""
    a = render_table(
        ["GPUs", "step (s)", "paper (s)", "efficiency", "bubble"],
        [
            [r["gpus"], r["step_time"], r["paper_step_time"], r["efficiency"],
             r["bubble_fraction"]]
            for r in run_llama()
        ],
        title="Figure 9a: LLaMA-13B (seq 2048, batch 4096, pp=4)",
    )
    b = render_table(
        ["GPUs", "step (s)", "paper (s)", "efficiency", "bubble"],
        [
            [r["gpus"], r["step_time"], r["paper_step_time"], r["efficiency"],
             r["bubble_fraction"]]
            for r in run_moe()
        ],
        title="Figure 9b: DeepSeekMoE-16B (seq 4096, batch 4608, pp=10)",
    )
    return a + "\n\n" + b
