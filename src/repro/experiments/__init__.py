"""Experiment reproductions: one module per paper table/figure.

Each module exposes a ``run()`` returning structured rows/series and a
``render()`` producing the printable table, so the benchmark harness and
the examples share one implementation. ``PAPER`` constants record the
published values next to what we regenerate (EXPERIMENTS.md summarizes
the comparison).
"""

from repro.experiments import (
    checkpoint_exp,
    congestion_exp,
    failures_exp,
    fig1_2_3,
    fig7,
    fig8,
    fig9,
    future_arch,
    operations_exp,
    scheduling_exp,
    storage_throughput,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.fmt import render_table

__all__ = [
    "checkpoint_exp",
    "congestion_exp",
    "failures_exp",
    "fig1_2_3",
    "fig7",
    "fig8",
    "fig9",
    "future_arch",
    "operations_exp",
    "scheduling_exp",
    "render_table",
    "storage_throughput",
    "table1",
    "table2",
    "table3",
    "table4",
]
