"""Section VII end to end: a quarter of cluster operations, quantified.

Simulates 13 weeks on a scaled Fire-Flyer cluster with the complete
stability machinery running:

* a full backlog of training jobs on the HAI time-sharing scheduler,
* hardware failures arriving at the Table-VI-calibrated empirical rate
  (a configurable fraction are node-fatal, per the uncorrectable share),
* the checkpoint-interrupt protocol bounding each crash's loss,
* weekly validator sweeps catching degrading nodes before they fail.

Reports the quantities the paper's operations story implies: platform
utilization (the "99%" claim under backlog), GPU-hours lost to failures,
and the recovery overhead fraction.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.hai import HAICluster, Task, TaskState, TimeSharingScheduler
from repro.reliability.failures import FailureGenerator
from repro.reliability.xid import classify_xid, XidCategory

WEEK = 7 * 86400.0


def run(
    n_nodes: int = 32,
    weeks: int = 13,
    seed: int = 17,
    checkpoint_interval: float = 300.0,
    repair_time: float = 3600.0,
) -> Dict[str, float]:
    """Simulate the quarter; returns the operations scorecard."""
    sched = TimeSharingScheduler(HAICluster.two_zone(n_nodes // 2))
    horizon = weeks * WEEK
    # Saturating backlog: jobs sized so the cluster never idles.
    n_jobs = n_nodes // 4 * 2
    for i in range(n_jobs):
        sched.submit(
            Task(f"job{i}", nodes_required=4,
                 total_work=horizon * n_nodes / (4.0 * n_jobs) * 1.2,
                 checkpoint_interval=checkpoint_interval)
        )

    gen = FailureGenerator(n_nodes=n_nodes, seed=seed)
    events = gen.failure_stream(horizon)
    # Node-fatal events: uncorrectable + GSP classes, plus ECC events
    # needing a GPU reset (brief but disruptive at task level).
    fatal = [
        e for e in events
        if classify_xid(e.xid).category in (
            XidCategory.UNCORRECTABLE, XidCategory.GSP, XidCategory.GPU_ECC
        )
    ]
    node_names = [n.name for n in sched.cluster.nodes()]
    crashes = 0
    lost_seconds = 0.0
    for k, ev in enumerate(sorted(fatal, key=lambda e: e.time)):
        when = max(ev.time, sched.now)
        if when >= horizon:
            break
        node = node_names[k % n_nodes]
        if not sched.cluster.node(node).healthy:
            continue
        # Bring the simulation to the failure instant first, so the loss
        # measurement compares progress at the crash against the rollback.
        sched.run(until=when)
        before = {t.task_id: t.work_done for t in sched.tasks.values()}
        victim = sched.fail_node(node)
        if victim:
            crashes += 1
            lost_seconds += before[victim] - sched.tasks[victim].work_done
        sched.repair_node(node, now=min(when + repair_time, horizon))

    sched.run(until=horizon)
    util = sched.utilization()
    total_node_seconds = horizon * n_nodes
    return {
        "nodes": float(n_nodes),
        "weeks": float(weeks),
        "xid_count": float(len(events)),
        "node_fatal_events": float(len(fatal)),
        "task_crashes": float(crashes),
        "utilization": util,
        "lost_gpu_hours": lost_seconds * 8 * 4 / 3600.0,  # 4 nodes x 8 GPUs
        "lost_fraction": lost_seconds * 4 / total_node_seconds,
        "max_loss_per_crash_s": checkpoint_interval,
    }


@experiment('operations', 'Section VII: a quarter of cluster operations, end to end')
def render() -> str:
    """Printable operations scorecard."""
    r = run()
    return render_table(
        ["Metric", "Value"],
        [[k, v] for k, v in r.items()],
        title="Section VII: one quarter of operations on a scaled cluster",
    )
