"""Figures 1-3: growth of compute demand, the memory wall, model-vs-memory."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.registry import experiment
from repro.costmodel.growth import (
    ACCELERATOR_MEMORY,
    MODEL_SIZES,
    compute_demand_series,
    compute_doubling_months,
    hardware_scaling_series,
    memory_gap_series,
)
from repro.experiments.fmt import render_table


def run_fig1() -> List[Tuple[str, float, float]]:
    """Figure 1 series: (model, year, training FLOPs)."""
    return compute_demand_series()


def run_fig2(years: int = 10) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 2 series: normalized hardware/demand growth curves."""
    return hardware_scaling_series(years=years)


def run_fig3() -> Dict[str, list]:
    """Figure 3 series: model sizes, accelerator memory, and the gap."""
    return {
        "model_params": sorted(MODEL_SIZES, key=lambda r: r[1]),
        "accelerator_memory": sorted(ACCELERATOR_MEMORY, key=lambda r: r[1]),
        "gap_ratio": memory_gap_series(),
    }


@experiment('fig1_2_3', 'Figures 1-3: compute demand growth and the memory wall')
def render() -> str:
    """Printable summary of all three background figures."""
    parts = [
        render_table(
            ["Model", "Year", "Training FLOPs"],
            [(n, f"{y:.1f}", f"{c:.2g}") for n, y, c in run_fig1()],
            title="Figure 1: Exponential Growth of DL Compute "
                  f"(doubling every {compute_doubling_months():.1f} months)",
        ),
        render_table(
            ["Series", "x10yr growth"],
            [(k, f"{v[-1][1]:.1f}x") for k, v in run_fig2().items()],
            title="Figure 2: Scaling of Hardware vs Demand (10-year factors)",
        ),
        render_table(
            ["Year", "Params x 2B / single-GPU memory"],
            [(f"{y:.1f}", f"{r:.2f}") for y, r in run_fig3()["gap_ratio"]],
            title="Figure 3: Model Size vs Accelerator Memory Gap",
        ),
    ]
    return "\n\n".join(parts)
