"""Shared synthetic workloads: the 10k-GPU mixed-traffic flow set.

``benchmarks/test_perf_cluster.py`` and the hot-path profile crosscheck
(:mod:`repro.analysis.hotpath`) must exercise the *same* workload — the
crosscheck certifies that the ``[tool.repro.hotpaths]`` declaration in
``pyproject.toml`` matches where the benchmark actually spends its time,
which is only meaningful if both sides build identical traffic. This
module is that single source of truth.

:class:`ClusterShape` parameterizes the paper's production deployment
(Section III): two spine-joined fat-tree zones, ~620 GPU compute nodes
per zone at eight A100s each, and a dual-homed storage tier. The mixed
workload is deterministic — no RNG, starts staggered in 0.5 ms steps —
so profile runs and benchmark runs replay the exact same event sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.network import Flow, ServiceLevel

__all__ = [
    "ClusterShape",
    "PRODUCTION",
    "cluster_flows",
    "run_profile_workload",
    "zone_base",
]


@dataclass(frozen=True)
class ClusterShape:
    """Node counts and job layout of the synthetic cluster workload."""

    #: Compute nodes across both zones (paper: 1,240 → 9,920 GPUs).
    gpu_nodes: int = 1240
    gpus_per_node: int = 8
    #: Dual-homed storage nodes (paper: 180).
    storage_nodes: int = 180
    #: Concurrent ring-HFReduce training jobs, split evenly across zones.
    training_jobs: int = 16
    #: Zone-local nodes per training job.
    nodes_per_job: int = 62
    #: MoE jobs exchanging expert-parallel all-to-all traffic.
    ep_jobs: int = 2
    #: Nodes per EP job (taken from each zone's untouched tail).
    ep_nodes: int = 16

    @property
    def gpus(self) -> int:
        return self.gpu_nodes * self.gpus_per_node

    @property
    def zone0_nodes(self) -> int:
        return (self.gpu_nodes + 1) // 2


#: The paper's deployment scale; what ``BENCH_cluster.json`` reports.
PRODUCTION = ClusterShape()


def zone_base(shape: ClusterShape, job: int) -> int:
    """First compute-node index of a training job (jobs are zone-local)."""
    per_zone_jobs = shape.training_jobs // 2
    if job < per_zone_jobs:
        return job * shape.nodes_per_job
    return shape.zone0_nodes + (job - per_zone_jobs) * shape.nodes_per_job


def cluster_flows(shape: ClusterShape = PRODUCTION) -> Dict[str, List[Flow]]:
    """The mixed workload, deterministic and staggered.

    Three traffic classes, keyed by name:

    * ``training`` — ring-neighbour HFReduce gradient flows per job;
      sizes vary by job so completion waves interleave instead of
      collapsing into one batch,
    * ``storage`` — every eighth compute node pulls a checkpoint shard
      from its zone-local 3FS storage NIC,
    * ``ep_alltoall`` — NCCL-level expert-parallel pairwise flows.

    Starts stagger in 0.5 ms steps so the warm engine sees continuous
    admit/retire churn rather than one cold solve.
    """
    fid = 0
    training: List[Flow] = []
    for job in range(shape.training_jobs):
        base = zone_base(shape, job)
        nodes = [f"cn{base + k}" for k in range(shape.nodes_per_job)]
        size = 1.0e9 * (1 + job % 4)
        for k, src in enumerate(nodes):
            training.append(
                Flow(src, nodes[(k + 1) % len(nodes)], size=size,
                     sl=ServiceLevel.HFREDUCE, flow_id=fid,
                     start=0.0005 * (fid % 16))
            )
            fid += 1
    storage: List[Flow] = []
    z0_nodes = shape.zone0_nodes
    for i, reader_idx in enumerate(range(0, shape.gpu_nodes, 8)):
        reader = f"cn{reader_idx}"
        nic = "nic0" if reader_idx < z0_nodes else "nic1"
        storage.append(
            Flow(f"st{i % shape.storage_nodes}.{nic}", reader, size=4.0e9,
                 sl=ServiceLevel.STORAGE, flow_id=fid,
                 start=0.0005 * (fid % 16))
        )
        fid += 1
    ep: List[Flow] = []
    for job in range(shape.ep_jobs):
        # Tail nodes of each zone, untouched by the training jobs.
        base = (
            (z0_nodes - shape.ep_nodes) if job == 0
            else (shape.gpu_nodes - shape.ep_nodes)
        )
        nodes = [f"cn{base + k}" for k in range(shape.ep_nodes)]
        for a in nodes:
            for b in nodes:
                if a == b:
                    continue
                ep.append(
                    Flow(a, b, size=2.5e8, sl=ServiceLevel.NCCL,
                         flow_id=fid, start=0.0005 * (fid % 16))
                )
                fid += 1
    return {"training": training, "storage": storage, "ep_alltoall": ep}


def run_profile_workload(
    shape: ClusterShape = PRODUCTION,
    util_sample_interval: float = 0.25,
    kernel_events: int = 5000,
) -> None:
    """One monitored cluster run plus DES-kernel churn, for profiling.

    This is the workload :func:`repro.analysis.hotpath.profile_workload`
    profiles to cross-check the hot-path declaration: a vectorized
    :class:`~repro.network.flows.FlowSim` run of :func:`cluster_flows`
    under a live telemetry session with the streaming monitor attached
    (so telemetry emit and detector callbacks are on-profile), followed
    by a burst of :class:`~repro.simcore.kernel.Environment` timeout
    churn (so the DES kernel's per-event path is on-profile too).
    """
    from repro import telemetry
    from repro.monitor import Monitor
    from repro.network import FlowSim, fire_flyer_network
    from repro.simcore import Environment

    fab = fire_flyer_network(
        gpu_nodes=shape.gpu_nodes, storage_nodes=shape.storage_nodes
    )
    flows = [f for group in cluster_flows(shape).values() for f in group]
    session = telemetry.start(trace=True)
    monitor = Monitor(session).attach()
    try:
        sim = FlowSim(
            fab, engine="vectorized",
            util_sample_interval=util_sample_interval,
        )
        sim.run(flows)
        monitor.finish()
    finally:
        monitor.detach()
        telemetry.stop()

    env = Environment()

    def churn(n: int):
        for i in range(n):
            yield env.timeout(0.001 + (i % 7) * 0.0005)

    env.process(churn(kernel_events), name="profile-churn")
    # A same-timestamp burst exercises the batch-dispatch path.
    env.process(_burst(env, kernel_events // 10), name="profile-burst")
    env.run()


def _burst(env, n: int):
    for _ in range(max(n, 1)):
        events = env.timeouts(0.002, range(8))
        yield env.all_of(events)
