"""Table III: relative network/server cost comparison."""

from __future__ import annotations

from typing import List

from repro.experiments.registry import experiment
from repro.costmodel.capex import network_cost_comparison
from repro.experiments.fmt import render_table

#: Published values (switch counts; network / server / total price).
PAPER = {
    "Our Arch": (122, 350, 11250, 11600),
    "PCIe Arch with Three-Layer Fat-Tree": (200, 600, 11250, 11850),
    "DGX Arch": (1320, 4000, 19000, 23000),
}


def run() -> List[List]:
    """Rows: [metric, ours, pcie-3-layer, dgx]."""
    ours, pcie3l, dgx = network_cost_comparison()
    return [
        ["Number of Switches", ours.n_switches, pcie3l.n_switches, dgx.n_switches],
        ["Network Price", ours.network_price, pcie3l.network_price,
         dgx.network_price],
        ["Server Price", ours.server_price, pcie3l.server_price, dgx.server_price],
        ["Total Price", ours.total_price, pcie3l.total_price, dgx.total_price],
    ]


@experiment('table3', 'Table III: relative network/server cost comparison')
def render() -> str:
    """Printable Table III."""
    return render_table(
        ["", "Our Arch", "PCIe + 3-Layer Fat-Tree", "DGX Arch"], run(),
        title="Table III: Relative Cost Comparison",
    )
