"""One-shot reproduction report: every experiment rendered to a file.

``python -c "from repro.experiments.report import write_report; write_report()"``
or via the CLI's default all-experiments run. Benchmarks call the same
renders; this module just collects them with a header for archiving.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.experiments.__main__ import EXPERIMENTS


def build_report() -> str:
    """Render every registered experiment into one document."""
    buf = io.StringIO()
    buf.write("Fire-Flyer AI-HPC — reproduction report\n")
    buf.write("=" * 60 + "\n\n")
    for name in sorted(EXPERIMENTS):
        buf.write(EXPERIMENTS[name].render())
        buf.write("\n\n")
    return buf.getvalue()


def write_report(path: str = "REPORT.md") -> str:
    """Write the report to ``path``; returns the path."""
    text = build_report()
    with open(path, "w") as fh:
        fh.write("```\n")
        fh.write(text)
        fh.write("```\n")
    return path
