"""The monitored chaos week: stream symptoms, score every detector.

Where :mod:`repro.experiments.chaos` replays the weekly fault plan
through each recovery path *in isolation*, this harness replays the
whole week once, minute by minute, emitting the **symptoms** each fault
produces into the live telemetry session — sustained ``link_util``
hotspots while traffic drains around a flapped link, bursts of Xid
instants on ``health/<node>`` tracks, HFReduce ``d2h`` rounds where the
hung host's rank straggles, 3FS read spans stretched by the client
retry schedule, and a *real* :class:`~repro.hai.TimeSharingScheduler`
whose queue waits balloon when capacity goes missing.

A :class:`~repro.monitor.Monitor` attached to the session watches the
stream exactly as production monitoring would — it never sees the plan.
A :class:`~repro.monitor.SchedulerActuator` closes the loop: node-
convicting Xid alerts drain the mapped scheduler node and resolution
returns it. At the end of the week every detector is graded against the
injected ground truth via :func:`~repro.monitor.score_detections`.

Everything is keyed on simulated time and a single seeded RNG, so two
runs of :func:`run_monitored` with the same plan and seed produce
byte-identical scores (the replay certificate pins this down).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.experiments.chaos import ChaosConfig, _fabric, _switch_links
from repro.faults import FaultPlan, RetryPolicy, WEEK_SECONDS
from repro.hai import HAICluster, Task, TimeSharingScheduler
from repro.monitor import (
    Alert,
    DetectionScore,
    Monitor,
    SchedulerActuator,
    score_detections,
)
from repro.units import MINUTE, Seconds, ms, us

__all__ = ["MonitoredWeek", "run_monitored"]

#: Emission cadences (simulated time).
TICK = MINUTE  # gauge/health sampling grain
ROUND_INTERVAL = 10 * MINUTE  # HFReduce round cadence
STORAGE_INTERVAL = 2 * MINUTE  # 3FS read cadence

#: Healthy baselines.
D2H_BASE = ms(50.0)  # per-round d2h stage duration
READ_BASE = us(400.0)  # 3FS read service time

#: Symptom windows around each fault kind.
LINK_RELAX = 4 * MINUTE  # congestion persists while traffic drains back
NIC_OUTAGE = 20 * MINUTE  # reroute pressure until the NIC is swapped
STORAGE_OUTAGE = 30 * MINUTE  # retries until the chain re-forms
HANG_TURNAROUND = 45 * MINUTE  # ops turnaround before a hung host returns

# The scheduler workload cadence (task_arrival_s / task_work_s), node
# pool, and watched-link count come from :class:`ChaosConfig` — the
# chaos experiment's ``--set`` surface.


def _crc_pick(label: str, n: int) -> int:
    """Deterministic label -> [0, n) mapping (stable across processes)."""
    return zlib.crc32(label.encode("utf-8")) % n


@dataclass(frozen=True)
class MonitoredWeek:
    """Outcome of one monitored chaos week."""

    scores: List[DetectionScore]
    alerts: List[Alert]
    #: Closed-loop actuation counters.
    drains: int
    undrains: int
    displaced: int
    #: Scheduler-side ground truth for the loop.
    drain_events: int
    tasks_submitted: int
    tasks_finished: int
    #: Online queue-wait aggregates (the monitor's sketch, not a post-pass).
    queue_p50_s: Optional[Seconds]
    queue_p99_s: Optional[Seconds]

    @property
    def alerts_fired(self) -> int:
        return len(self.alerts)

    @property
    def alerts_resolved(self) -> int:
        return sum(1 for a in self.alerts if a.resolved_at is not None)


def run_monitored(
    plan: FaultPlan, seed: int, config: Optional[ChaosConfig] = None
) -> MonitoredWeek:
    """Stream one week of symptoms from ``plan`` through a live monitor.

    Reuses the active telemetry session if one is running (so CLI trace/
    metric exports include the monitored week); otherwise starts and
    stops a private one.
    """
    sess = telemetry.session()
    owned = sess is None
    if owned:
        sess = telemetry.start(trace=True)
    try:
        return _run_week(sess, plan, seed, config or ChaosConfig())
    finally:
        if owned:
            telemetry.stop()


# -- symptom schedules --------------------------------------------------------------


def _link_windows(
    plan: FaultPlan, labels: List[str]
) -> Dict[int, List[Tuple[float, float]]]:
    """Hot windows per watched-link index: congestion while rerouted."""
    windows: Dict[int, List[Tuple[float, float]]] = {}
    for ev in plan.of_kind("link_flap"):
        label = f"{ev.link[0]}->{ev.link[1]}"
        idx = _crc_pick(label, len(labels))
        windows.setdefault(idx, []).append(
            (ev.time, ev.time + ev.duration + LINK_RELAX)
        )
    for ev in plan.of_kind("nic_down"):
        idx = _crc_pick(ev.node, len(labels))
        windows.setdefault(idx, []).append(
            (ev.time, ev.time + NIC_OUTAGE + LINK_RELAX)
        )
    return windows


def _xid_actions(plan: FaultPlan) -> List[Tuple[float, str, int]]:
    """(time, node, code) health instants: each fault shows as a burst."""
    out: List[Tuple[float, str, int]] = []
    for ev in plan.of_kind("gpu_xid"):
        for k in range(3):
            out.append((ev.time + 20.0 * k, ev.node, ev.xid))
    for ev in plan.of_kind("ecc_error"):
        for k in range(3):
            out.append((ev.time + 20.0 * k, ev.node, 94))
    return sorted(out)


def _hang_windows(plan: FaultPlan) -> List[Tuple[float, float, str]]:
    """Degraded-rank windows: the hung host straggles past its hang."""
    return [
        (ev.time, ev.time + ev.duration + ROUND_INTERVAL, ev.node)
        for ev in plan.of_kind("host_hang")
    ]


def _storage_windows(plan: FaultPlan) -> List[Tuple[float, float]]:
    return [
        (ev.time, ev.time + STORAGE_OUTAGE)
        for ev in plan.of_kind("storage_node_loss")
    ]


def _in_any(t: float, windows: List[Tuple[float, float]]) -> bool:
    return any(s <= t < e for s, e in windows)


# -- the week -----------------------------------------------------------------------


def _run_week(
    sess, plan: FaultPlan, seed: int, cfg: ChaosConfig
) -> MonitoredWeek:
    rng = Random(seed)
    tracer = sess.tracer

    labels = [
        f"{a}->{b}"
        for a, b in _switch_links(_fabric(cfg.nodes))[:cfg.watched_links]
    ]
    link_hot = _link_windows(plan, labels)
    xids = _xid_actions(plan)
    hangs = _hang_windows(plan)
    storage_hot = _storage_windows(plan)
    retry_stretch = RetryPolicy().total_backoff()

    # The real scheduler: faults land on its cluster through a stable
    # crc map from plan node ids, exactly like the actuator's drains.
    sched = TimeSharingScheduler(HAICluster.two_zone(4))
    sched_nodes = sorted(n.name for n in sched.cluster.nodes())

    def sched_node_for(entity: str) -> str:
        return sched_nodes[_crc_pick(entity, len(sched_nodes))]

    #: (time, op, payload) in time order; op "fail"/"repair" drive the
    #: scheduler, "xid" emits a health instant.
    actions: List[Tuple[float, int, str, object]] = []
    for t, node, code in xids:
        actions.append((t, len(actions), "xid", (node, code)))
    for ev in plan.of_kind("host_hang"):
        node = sched_node_for(ev.node)
        actions.append((ev.time, len(actions), "fail", node))
        actions.append(
            (ev.time + ev.duration + HANG_TURNAROUND, len(actions),
             "repair", node)
        )
    actions.sort(key=lambda a: (a[0], a[1]))

    actuator = SchedulerActuator(sched, node_for=sched_node_for)
    monitor = Monitor(sess, actuators=[actuator]).attach()
    try:
        ai = 0
        next_arrival = 0.0
        n_tasks = 0
        n_ticks = int(WEEK_SECONDS / TICK)
        for k in range(n_ticks):
            t = k * TICK
            # Timed fault-side effects due by this tick, in time order.
            while ai < len(actions) and actions[ai][0] <= t:
                at, _, op, payload = actions[ai]
                ai += 1
                if op == "xid":
                    node, code = payload
                    tracer.instant(
                        "xid", at, track=f"health/{node}", cat="health",
                        args={"code": code, "node": node},
                    )
                elif op == "fail":
                    sched.fail_node(payload, now=max(at, sched.now))
                else:
                    sched.repair_node(payload, now=max(at, sched.now))
            # Steady task arrivals keep the queue-wait stream flowing.
            while next_arrival <= t:
                sched.submit(
                    Task(
                        task_id=f"job{n_tasks}", nodes_required=4,
                        total_work=cfg.task_work_s,
                        checkpoint_interval=5 * MINUTE,
                    ),
                    now=max(next_arrival, sched.now),
                )
                n_tasks += 1
                next_arrival += cfg.task_arrival_s
            if t > sched.now:
                sched.run(until=t)
            # Link utilization samples: hot inside an outage window,
            # noisy-healthy otherwise (rare one-tick spikes the hold
            # hysteresis must reject).
            for i, label in enumerate(labels):
                if _in_any(t, link_hot.get(i, [])):
                    util = rng.uniform(0.93, 0.99)
                elif rng.random() < 0.01:
                    util = 0.92
                else:
                    util = rng.uniform(0.35, 0.75)
                sess.registry.gauge("link_util", link=label).set(util, ts=t)
            # HFReduce round: 16 ranks' d2h stage spans; the hung host's
            # rank straggles by ~8x while degraded.
            if k % int(ROUND_INTERVAL / TICK) == 0:
                for g in range(cfg.nodes):
                    node = f"cn{g}"
                    dur = D2H_BASE * rng.uniform(0.9, 1.1)
                    if any(s <= t < e for s, e, n in hangs if n == node):
                        dur *= 8.0
                    tracer.complete(
                        "d2h", t, dur, track=f"hfreduce/gpu{g}",
                        cat="collectives", args={"node": node},
                    )
            # 3FS reads: retry backoff stretches latency during an outage.
            if k % int(STORAGE_INTERVAL / TICK) == 0:
                dur = READ_BASE * rng.uniform(0.8, 1.2)
                if _in_any(t, storage_hot):
                    dur += retry_stretch
                tracer.complete("read", t, dur, track="fs3/client", cat="fs3")
            # Benign background noise: single app-level Xids (Table V
            # "check application") that must never convict a node.
            if rng.random() < 0.02:
                node = f"cn{rng.randrange(cfg.nodes)}"
                code = 13 if rng.random() < 0.5 else 31
                tracer.instant(
                    "xid", t, track=f"health/{node}", cat="health",
                    args={"code": code, "node": node},
                )
            monitor.advance(t)
        monitor.finish(float(WEEK_SECONDS))
    finally:
        monitor.detach()

    queue = monitor.series("task_queue_wait_s")
    return MonitoredWeek(
        scores=score_detections(monitor.detectors, monitor.alerts, plan),
        alerts=monitor.alerts,
        drains=actuator.drains,
        undrains=actuator.undrains,
        displaced=len(actuator.displaced),
        drain_events=sum(1 for e in sched.events if e.kind == "drain"),
        tasks_submitted=n_tasks,
        tasks_finished=sum(1 for e in sched.events if e.kind == "finish"),
        queue_p50_s=queue.sketch.quantile(0.5) if queue is not None else None,
        queue_p99_s=queue.sketch.quantile(0.99) if queue is not None else None,
    )
