"""Figure 12 / Section IX: the next-generation multi-plane architecture.

The proposal: 1:1 GPU-to-NIC nodes and a 4-plane network of two-layer
fat-trees built from 128-port 400 Gbps RoCE switches, supporting up to
32,768 GPUs at a fraction of the per-GPU switch cost of a three-layer
InfiniBand build.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.registry import experiment
from repro.experiments.fmt import render_table
from repro.hardware.node import nextgen_node
from repro.hardware.spec import QM8700_SWITCH, ROCE_400G_128P
from repro.network.fattree import multi_plane_counts, three_layer_counts

PAPER = {
    "max_gpus": 32_768,
    "planes": 4,
    "switch_ports": 128,
    "port_gbps": 400,
}


def run(n_gpus: int = 32_768, planes: int = 4) -> Dict[str, float]:
    """Switch economics of the multi-plane design vs alternatives."""
    per_plane_endpoints = n_gpus // planes
    mp = multi_plane_counts(per_plane_endpoints, planes=planes,
                            switch=ROCE_400G_128P)
    # Three-layer alternative with the same 128-port switches (a 40-port
    # QM8700 three-layer tree tops out at 16,000 endpoints).
    tl = three_layer_counts(n_gpus, switch=ROCE_400G_128P)
    node = nextgen_node()
    return {
        "max_gpus": planes * ROCE_400G_128P.ports * (ROCE_400G_128P.ports // 2) // 1,
        "multi_plane_switches": mp.total,
        "three_layer_ib_switches": tl.total,
        "mp_switches_per_1k_gpus": 1000.0 * mp.total / n_gpus,
        "tl_switches_per_1k_gpus": 1000.0 * tl.total / n_gpus,
        "gpu_nic_ratio": node.gpu_count / node.nic_count,
        "per_gpu_network_bw_gbps": node.nic.bw * 8 / 1e9,
    }


@experiment('future', 'Figure 12 / Section IX: next-gen multi-plane architecture')
def render() -> str:
    """Printable Section IX projection."""
    r = run()
    return render_table(
        ["Metric", "Value"],
        [[k, v] for k, v in r.items()],
        title="Figure 12 / Section IX: 4-plane two-layer fat-tree "
              "(128-port 400G RoCE) for MoE training",
    )
