"""Figure 7: allreduce bandwidth — HFReduce vs NCCL, and HFReduce+NVLink.

(a) 186 MiB allreduce scaled from 16 to 1440 GPUs: HFReduce 6.3-8.1 GB/s,
    NCCL 1.6-4.8 GB/s.
(b) HFReduce with NVLink exceeds 10 GB/s; tasks beyond one zone cross the
    inter-zone links (>128 GPUs per the figure's platform defaults).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.registry import experiment
from repro.collectives import AllreduceConfig, HFReduceModel, NCCLRingModel
from repro.experiments.fmt import render_table
from repro.units import MiB, as_gBps

GPU_COUNTS = [16, 32, 64, 128, 256, 512, 1024, 1440]
DATA_BYTES = 186 * MiB

#: Published bandwidth bands (GB/s) for the end points.
PAPER = {
    "hfreduce": (8.1, 6.3),  # 16 GPUs .. 1440 GPUs
    "nccl": (4.8, 1.6),
    "hfreduce_nvlink_min": 10.0,
}


def run(gpu_counts: List[int] = GPU_COUNTS) -> List[Dict[str, float]]:
    """Bandwidth sweep rows: gpus, hfreduce, nccl, hfreduce+nvlink (GB/s)."""
    hf = HFReduceModel()
    hf_nv = HFReduceModel(nvlink=True)
    # Figure 7b: cross-zone effects kick in beyond 128 GPUs for the test
    # jobs (platform default keeps smaller jobs zone-local).
    hf_nv_xzone = HFReduceModel(nvlink=True, zone_gpu_capacity=128)
    nc = NCCLRingModel()
    rows = []
    for gpus in gpu_counts:
        cfg = AllreduceConfig(nbytes=DATA_BYTES, n_nodes=max(gpus // 8, 1))
        rows.append(
            {
                "gpus": gpus,
                "hfreduce": as_gBps(hf.bandwidth(cfg)),
                "nccl": as_gBps(nc.bandwidth(cfg)),
                "hfreduce_nvlink": as_gBps(hf_nv.bandwidth(cfg)),
                "hfreduce_nvlink_cross_zone": as_gBps(hf_nv_xzone.bandwidth(cfg)),
            }
        )
    return rows


@experiment('fig7', 'Figure 7: allreduce bandwidth — HFReduce vs NCCL')
def render() -> str:
    """Printable Figure 7 series."""
    rows = run()
    return render_table(
        ["GPUs", "HFReduce GB/s", "NCCL GB/s", "HFR+NVLink GB/s",
         "HFR+NVLink xzone GB/s"],
        [
            [r["gpus"], r["hfreduce"], r["nccl"], r["hfreduce_nvlink"],
             r["hfreduce_nvlink_cross_zone"]]
            for r in rows
        ],
        title="Figure 7: Allreduce bandwidth, 186 MiB "
              "(paper: HFReduce 6.3-8.1, NCCL 1.6-4.8, +NVLink >10)",
    )
