"""Dragonfly topology accounting (Section III-B's rejected alternative).

"Although the Dragonfly topology also offers comparable cost-effectiveness
and performance, its lack of sufficient bisection bandwidth makes it
unsuitable for our integrated storage and computation network design."

This module quantifies that tradeoff: a balanced dragonfly (p hosts,
a = 2p routers per group, h = p global links per router) matches the
fat-tree's per-host switch cost but delivers only ``h / 2p`` = **half**
the relative bisection bandwidth — fatal for a network that must absorb
all-to-all storage incast alongside allreduce traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.hardware.spec import QM8700_SWITCH, SwitchSpec
from repro.network.fattree import two_layer_counts


@dataclass(frozen=True)
class DragonflyCounts:
    """Inventory and properties of one dragonfly configuration."""

    p: int  # hosts per router
    a: int  # routers per group
    h: int  # global links per router
    groups: int
    n_hosts: int
    n_switches: int
    relative_bisection: float  # 1.0 = full bisection (fat-tree)

    @property
    def max_groups(self) -> int:
        """Largest group count the global links support."""
        return self.a * self.h + 1

    @property
    def switches_per_host(self) -> float:
        """Cost metric comparable across topologies."""
        return self.n_switches / self.n_hosts


def dragonfly_counts(
    n_hosts: int,
    switch: SwitchSpec = QM8700_SWITCH,
) -> DragonflyCounts:
    """Balanced dragonfly sized for ``n_hosts`` on the given switch.

    The balanced recipe (Kim et al.): with router radix ``k``, choose
    ``p = h ~ k/4`` and ``a = 2p`` so terminal, local, and global ports
    are in the 1:2:1 proportion; ``p + (a-1) + h <= k``.
    """
    if n_hosts < 1:
        raise TopologyError("n_hosts must be >= 1")
    k = switch.ports
    p = k // 4
    h = p
    a = 2 * p
    if p + (a - 1) + h > k:
        raise TopologyError(f"balanced dragonfly does not fit radix {k}")
    hosts_per_group = p * a
    groups = math.ceil(n_hosts / hosts_per_group)
    max_groups = a * h + 1
    if groups > max_groups:
        raise TopologyError(
            f"{n_hosts} hosts need {groups} groups; radix {k} supports "
            f"{max_groups}"
        )
    # Adversarial bisection: cutting the groups in half crosses ~g*a*h/4
    # global links while a full-bisection network provides n_hosts/2 —
    # the ratio reduces to h / (2p) for the balanced configuration.
    return DragonflyCounts(
        p=p, a=a, h=h, groups=groups,
        n_hosts=n_hosts,
        n_switches=groups * a,
        relative_bisection=h / (2.0 * p),
    )


def compare_with_fat_tree(n_hosts: int = 800,
                          switch: SwitchSpec = QM8700_SWITCH) -> dict:
    """Side-by-side cost and bisection (the Section III-B decision)."""
    df = dragonfly_counts(n_hosts, switch)
    ft = two_layer_counts(n_hosts, switch)
    return {
        "dragonfly_switches": df.n_switches,
        "fat_tree_switches": ft.total,
        "dragonfly_switches_per_host": df.switches_per_host,
        "fat_tree_switches_per_host": ft.total / n_hosts,
        "dragonfly_relative_bisection": df.relative_bisection,
        "fat_tree_relative_bisection": 1.0,
    }
