"""Double binary tree construction (Sanders, Speck & Träff), as used by
HFReduce and NCCL for inter-node allreduce (Sections III-B, IV).

A single binary tree wastes half the bandwidth of every leaf. The
double-tree trick builds two spanning trees such that every rank is an
*interior* node in at most one of them; streaming half of the data down
each tree then uses every rank's full bandwidth.

Construction: tree 1 is the "inorder" binary tree over ranks 0..n-1 whose
leaves are exactly the even ranks; tree 2 relabels every rank ``r`` of
tree 1 as ``(r + 1) mod n``, making its interior nodes even. The two
interior sets are therefore disjoint (ranks interior in T2 are even, in T1
odd), which is the property the algorithm needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CollectiveError


@dataclass(frozen=True)
class TreeSpec:
    """One rooted tree over ranks 0..n-1."""

    n: int
    root: int
    parent: Tuple[Optional[int], ...]  # parent[rank] (None at root)
    children: Tuple[Tuple[int, ...], ...]  # children[rank]

    def depth_of(self, rank: int) -> int:
        """Edges from ``rank`` up to the root."""
        d = 0
        r: Optional[int] = rank
        while self.parent[r] is not None:  # type: ignore[index]
            r = self.parent[r]  # type: ignore[index]
            d += 1
        return d

    @property
    def depth(self) -> int:
        """Maximum depth over all ranks (~log2 n)."""
        return max(self.depth_of(r) for r in range(self.n))

    def is_interior(self, rank: int) -> bool:
        """Whether ``rank`` has children."""
        return bool(self.children[rank])


def _build_inorder(lo: int, hi: int, parent: List[Optional[int]],
                   children: List[List[int]], up: Optional[int]) -> Optional[int]:
    """Recursively build the inorder tree over [lo, hi); returns its root.

    The local root is placed at ``lo + 2^k - 1`` for the largest ``2^k``
    not exceeding the range size, which keeps every even rank a leaf.
    """
    size = hi - lo
    if size <= 0:
        return None
    h = 1
    while h * 2 <= size:
        h *= 2
    root = lo + h - 1
    parent[root] = up
    left = _build_inorder(lo, root, parent, children, root)
    right = _build_inorder(root + 1, hi, parent, children, root)
    for c in (left, right):
        if c is not None:
            children[root].append(c)
    return root


def build_tree(n: int, shift: int = 0) -> TreeSpec:
    """Inorder binary tree over ``n`` ranks, relabelled by ``+shift mod n``."""
    if n < 1:
        raise CollectiveError(f"tree needs >= 1 rank, got {n}")
    parent: List[Optional[int]] = [None] * n
    children: List[List[int]] = [[] for _ in range(n)]
    root = _build_inorder(0, n, parent, children, None)
    assert root is not None

    if shift % n == 0:
        return TreeSpec(
            n=n,
            root=root,
            parent=tuple(parent),
            children=tuple(tuple(c) for c in children),
        )

    def relabel(r: Optional[int]) -> Optional[int]:
        return None if r is None else (r + shift) % n

    new_parent: List[Optional[int]] = [None] * n
    new_children: List[Tuple[int, ...]] = [()] * n
    for r in range(n):
        new_parent[relabel(r)] = relabel(parent[r])  # type: ignore[index]
        new_children[relabel(r)] = tuple(relabel(c) for c in children[r])  # type: ignore[index]
    return TreeSpec(
        n=n,
        root=relabel(root),  # type: ignore[arg-type]
        parent=tuple(new_parent),
        children=tuple(new_children),
    )


@dataclass(frozen=True)
class DoubleBinaryTree:
    """The pair of trees used for full-bandwidth allreduce."""

    t1: TreeSpec
    t2: TreeSpec

    @property
    def n(self) -> int:
        """Number of ranks."""
        return self.t1.n

    @property
    def depth(self) -> int:
        """Max depth across both trees (drives the latency term)."""
        return max(self.t1.depth, self.t2.depth)

    def interior_disjoint(self) -> bool:
        """Verify the key property: no rank interior in both trees."""
        return not any(
            self.t1.is_interior(r) and self.t2.is_interior(r)
            for r in range(self.n)
        )


def double_binary_tree(n: int) -> DoubleBinaryTree:
    """Construct the double binary tree over ``n`` ranks."""
    if n < 1:
        raise CollectiveError(f"need >= 1 rank, got {n}")
    t1 = build_tree(n)
    t2 = build_tree(n, shift=1) if n > 1 else t1
    return DoubleBinaryTree(t1=t1, t2=t2)


@dataclass(frozen=True)
class RebuiltTree:
    """A double binary tree rebuilt over the ranks surviving a failure.

    HFReduce's degradation path (Section VI-C / VII-C): when a node
    drops mid-allreduce, the survivors re-form the double tree over the
    remaining ranks and continue at reduced width. ``survivors[v]`` maps
    the rebuilt tree's virtual rank ``v`` back to the original rank.
    """

    tree: DoubleBinaryTree
    survivors: Tuple[int, ...]

    @property
    def n_alive(self) -> int:
        """Ranks still participating."""
        return len(self.survivors)

    def virtual_rank(self, original: int) -> int:
        """The rebuilt-tree rank of an original rank (raises if dead)."""
        try:
            return self.survivors.index(original)
        except ValueError:
            raise CollectiveError(f"rank {original} did not survive")


def rebuild_double_binary_tree(n: int, dead: Tuple[int, ...]) -> RebuiltTree:
    """Rebuild the double tree after losing ``dead`` ranks out of ``n``.

    The survivors keep their relative order (virtual rank = index among
    survivors), so the rebuilt construction — and therefore the interior
    -disjointness property — is deterministic.
    """
    dead_set = set(dead)
    for r in dead_set:
        if not 0 <= r < n:
            raise CollectiveError(f"dead rank {r} out of range 0..{n - 1}")
    survivors = tuple(r for r in range(n) if r not in dead_set)
    if not survivors:
        raise CollectiveError("no rank survived; cannot rebuild tree")
    return RebuiltTree(
        tree=double_binary_tree(len(survivors)), survivors=survivors
    )
