"""Cluster fabric: topologies, routing, QoS, and flow-level simulation.

Reproduces the paper's network co-design (Sections III-B, VI-A, IX):

* the two-zone, two-layer fat-tree that integrates storage and computation
  traffic,
* comparison topologies (three-layer fat-tree, next-gen multi-plane),
* static vs ECMP vs adaptive routing,
* InfiniBand Service Level -> Virtual Lane traffic isolation,
* a fluid (max-min fair) flow simulator used for congestion studies, and
* the double binary tree used by HFReduce and NCCL for inter-node allreduce.
"""

from repro.network.topology import Fabric, LinkId
from repro.network.fattree import (
    FatTreeCounts,
    fire_flyer_network,
    multi_plane_counts,
    multi_plane_network,
    three_layer_counts,
    three_layer_fat_tree,
    two_layer_counts,
    two_layer_fat_tree,
    two_zone_network,
)
from repro.network.routing import (
    AdaptiveRouter,
    EcmpRouter,
    Router,
    StaticRouter,
)
from repro.network.qos import ServiceLevel, TrafficClassConfig, default_qos
from repro.network.flows import Flow, FlowResult, FlowSim, LinkEvent
from repro.network.dbtree import (
    DoubleBinaryTree,
    RebuiltTree,
    TreeSpec,
    build_tree,
    double_binary_tree,
    rebuild_double_binary_tree,
)
from repro.network.dragonfly import DragonflyCounts, compare_with_fat_tree, dragonfly_counts
from repro.network.linkfail import (
    DegradedFabric,
    FaultImpact,
    ImpactReport,
    PlanAssessment,
    assess_fault_plan,
    links_for_event,
    plan_link_events,
)

__all__ = [
    "AdaptiveRouter",
    "DegradedFabric",
    "DoubleBinaryTree",
    "DragonflyCounts",
    "EcmpRouter",
    "FaultImpact",
    "ImpactReport",
    "PlanAssessment",
    "RebuiltTree",
    "assess_fault_plan",
    "links_for_event",
    "rebuild_double_binary_tree",
    "Fabric",
    "FatTreeCounts",
    "Flow",
    "FlowResult",
    "FlowSim",
    "LinkEvent",
    "LinkId",
    "plan_link_events",
    "Router",
    "ServiceLevel",
    "StaticRouter",
    "TrafficClassConfig",
    "TreeSpec",
    "build_tree",
    "compare_with_fat_tree",
    "default_qos",
    "double_binary_tree",
    "dragonfly_counts",
    "fire_flyer_network",
    "multi_plane_counts",
    "multi_plane_network",
    "three_layer_counts",
    "three_layer_fat_tree",
    "two_layer_counts",
    "two_layer_fat_tree",
    "two_zone_network",
]
