"""InfiniBand Service Level / Virtual Lane traffic isolation (Section VI-A1).

Four traffic classes share the computation-storage integrated network:
HFReduce allreduce, NCCL, 3FS storage, and everything else. The production
network maps each class to its own Service Level, and SLs to distinct
Virtual Lanes with configured arbitration weights, so classes cannot block
each other (no head-of-line blocking across classes).

In the fluid model, VL isolation turns into *weighted* max-min sharing
(each class's flows carry its VL weight). Without isolation, all classes
compete in one FIFO lane; we additionally apply a HOL-blocking efficiency
penalty on links carrying a mix of classes, reflecting the throughput
collapse that mixed bursty traffic causes on a single lane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.errors import TopologyError
from repro.units import Scalar


class ServiceLevel(enum.Enum):
    """The four traffic classes of Section VI-A1."""

    HFREDUCE = "hfreduce"
    NCCL = "nccl"
    STORAGE = "storage"
    OTHER = "other"


@dataclass
class TrafficClassConfig:
    """SL -> VL mapping and arbitration weights."""

    isolation: bool = True
    weights: Dict[ServiceLevel, float] = field(
        default_factory=lambda: {
            ServiceLevel.HFREDUCE: 4.0,
            ServiceLevel.NCCL: 2.0,
            ServiceLevel.STORAGE: 3.0,
            ServiceLevel.OTHER: 1.0,
        }
    )
    #: Fraction of link capacity lost to HOL blocking when classes mix on a
    #: single lane (no isolation). Calibrated so that mixed HFReduce+storage
    #: traffic shows the congestion the paper works to avoid.
    hol_penalty: Scalar = 0.25

    def __post_init__(self) -> None:
        for sl, w in self.weights.items():
            if w <= 0:
                raise TopologyError(f"VL weight for {sl} must be positive")
        if not 0 <= self.hol_penalty < 1:
            raise TopologyError("hol_penalty must be in [0,1)")

    def flow_weight(self, sl: ServiceLevel) -> Scalar:
        """Max-min weight for a flow of class ``sl``."""
        if self.isolation:
            return self.weights[sl]
        return 1.0

    def link_efficiency(self, classes_on_link: Set[ServiceLevel]) -> Scalar:
        """Capacity multiplier for a link given the classes it carries."""
        return self.efficiency_for(len(classes_on_link))

    def efficiency_for(self, n_classes: int) -> Scalar:
        """Capacity multiplier given only the *number* of classes present.

        Fast path for the incremental flow engine, which maintains per-link
        class counts across events instead of rebuilding class sets.
        """
        if self.isolation or n_classes <= 1:
            return 1.0
        return 1.0 - self.hol_penalty


def default_qos() -> TrafficClassConfig:
    """The production configuration: isolation on, tuned weights."""
    return TrafficClassConfig(isolation=True)
