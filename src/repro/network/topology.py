"""Fabric graph: hosts, switches, and capacitated directed links."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.units import BytesPerSec
from repro.errors import TopologyError

#: A directed link is identified by its (src, dst) node names.
LinkId = Tuple[str, str]


class Fabric:
    """A cluster network: an undirected graph whose edges carry capacity.

    Nodes are named strings with a ``kind`` attribute (``host``, ``leaf``,
    ``spine``, ``core``). Capacities are full-duplex: each direction of an
    edge is an independent :data:`LinkId` with the edge's capacity.
    """

    #: Per-destination BFS distance maps kept before a full clear. A map
    #: costs O(V); the cap only matters for pathological many-destination
    #: sweeps over huge fabrics.
    _DIST_CACHE_MAX = 4096

    def __init__(self, name: str = "fabric") -> None:
        self.name = name
        self.g = nx.Graph()
        self._zone: Dict[str, int] = {}
        # Routing fast path (see all_shortest_paths): an index-space CSR
        # view of the graph plus per-destination BFS levels and path
        # counts, shared by every source that routes to the same
        # destination. Invalidated on any topology mutation.
        self._csr_cache = None
        self._dist_cache: Dict[int, List[int]] = {}
        self._spc_cache: Dict[int, List[int]] = {}

    # -- construction ----------------------------------------------------------

    def _invalidate_routing_caches(self) -> None:
        self._csr_cache = None
        self._dist_cache.clear()
        self._spc_cache.clear()

    def add_host(self, name: str, zone: int = 0, **attrs) -> None:
        """Add an endpoint (compute or storage node NIC port)."""
        if name in self.g:
            raise TopologyError(f"duplicate node {name!r}")
        self.g.add_node(name, kind="host", **attrs)
        self._zone[name] = zone
        self._invalidate_routing_caches()

    def add_switch(self, name: str, tier: str, zone: int = 0, **attrs) -> None:
        """Add a switch at tier ``leaf`` / ``spine`` / ``core``."""
        if name in self.g:
            raise TopologyError(f"duplicate node {name!r}")
        if tier not in ("leaf", "spine", "core"):
            raise TopologyError(f"unknown switch tier {tier!r}")
        self.g.add_node(name, kind=tier, **attrs)
        self._zone[name] = zone
        self._invalidate_routing_caches()

    def add_link(self, a: str, b: str, capacity: BytesPerSec) -> None:
        """Connect two nodes with a full-duplex link of ``capacity`` B/s."""
        if a not in self.g or b not in self.g:
            raise TopologyError(f"link endpoints must exist: {a!r}, {b!r}")
        if capacity <= 0:
            raise TopologyError(f"capacity must be positive, got {capacity}")
        if self.g.has_edge(a, b):
            raise TopologyError(f"duplicate link {a!r}-{b!r}")
        self.g.add_edge(a, b, capacity=float(capacity))
        self._invalidate_routing_caches()

    # -- queries ---------------------------------------------------------------

    @property
    def hosts(self) -> List[str]:
        """All endpoint names, sorted."""
        return sorted(n for n, d in self.g.nodes(data=True) if d["kind"] == "host")

    def switches(self, tier: Optional[str] = None) -> List[str]:
        """Switch names, optionally filtered by tier."""
        tiers = {"leaf", "spine", "core"} if tier is None else {tier}
        return sorted(n for n, d in self.g.nodes(data=True) if d["kind"] in tiers)

    def zone_of(self, node: str) -> int:
        """The fat-tree zone a node belongs to."""
        try:
            return self._zone[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}")

    def capacity(self, link: LinkId) -> BytesPerSec:
        """Capacity in bytes/s of one direction of a link."""
        a, b = link
        try:
            return self.g.edges[a, b]["capacity"]
        except KeyError:
            raise TopologyError(f"no link {a!r}-{b!r}")

    def neighbors(self, node: str) -> List[str]:
        """Adjacent node names, sorted (deterministic routing)."""
        return sorted(self.g.neighbors(node))

    def degree(self, node: str) -> int:
        """Number of links attached to ``node``."""
        return self.g.degree(node)

    def path_links(self, path: List[str]) -> List[LinkId]:
        """Convert a node path to its directed links, validating edges."""
        links: List[LinkId] = []  # repro: noqa[PERF001] - the returned link list
        for a, b in zip(path, path[1:]):
            if not self.g.has_edge(a, b):
                raise TopologyError(f"path uses missing link {a!r}-{b!r}")
            links.append((a, b))
        return links

    def _csr(self) -> Tuple[List[str], Dict[str, int], "np.ndarray", "np.ndarray", List[List[int]]]:
        """Index-space topology view for the routing fast path.

        Returns ``(names, index, indptr, indices, adj)``: node names in
        insertion order, the name→index map, CSR adjacency as NumPy arrays
        (for the vectorized BFS), and the same adjacency as Python int
        lists (for per-route DFS/unranking, where list indexing beats
        NumPy scalar access). Neighbours are ordered by *name* so every
        index-space traversal reproduces the lexicographic path order of
        the original string-space enumeration.
        """
        csr = self._csr_cache
        if csr is None:
            names = list(self.g.nodes)
            index = {n: i for i, n in enumerate(names)}  # repro: noqa[PERF001] - CSR built once per fabric, cached
            adj: List[List[int]] = [  # repro: noqa[PERF001] - CSR built once per fabric, cached
                [index[nbr] for nbr in sorted(self.g.neighbors(n))]  # repro: noqa[PERF001] - CSR built once per fabric, cached
                for n in names
            ]
            counts = np.array([len(a) for a in adj], dtype=np.intp)  # repro: noqa[PERF001] - CSR built once per fabric, cached
            indptr = np.zeros(len(names) + 1, dtype=np.intp)
            np.cumsum(counts, out=indptr[1:])
            indices = np.array(
                [j for a in adj for j in a], dtype=np.intp  # repro: noqa[PERF001] - CSR built once per fabric, cached
            ) if names else np.zeros(0, dtype=np.intp)
            csr = self._csr_cache = (names, index, indptr, indices, adj)
        return csr

    def _levels_to(self, di: int) -> List[int]:
        """BFS hop counts toward node index ``di`` (-1 = unreachable).

        One vectorized BFS serves every source routing to the same
        destination — this is what makes full-fabric flow mixes affordable
        (IB-style destination-rooted forwarding), versus one graph
        traversal per (src, dst) pair.
        """
        lev = self._dist_cache.get(di)
        if lev is None:
            names, _, indptr, indices, _ = self._csr()
            if len(self._dist_cache) >= self._DIST_CACHE_MAX:
                self._dist_cache.clear()
                self._spc_cache.clear()
            larr = np.full(len(names), -1, dtype=np.int64)
            larr[di] = 0
            frontier = np.array([di], dtype=np.intp)  # repro: noqa[PERF001] - per-destination cache fill
            scratch = np.zeros(len(names), dtype=bool)
            d = 0
            while frontier.size:
                d += 1
                starts = indptr[frontier]
                counts = indptr[frontier + 1] - starts
                total = int(counts.sum())
                if not total:
                    break
                cum = np.cumsum(counts) - counts
                nbrs = indices[np.repeat(starts - cum, counts)
                               + np.arange(total)]
                cand = nbrs[larr[nbrs] < 0]  # repro: noqa[PERF002] - BFS frontier; one BFS per destination, then cached
                if not cand.size:
                    break
                # Deduplicate via boolean scatter (cheaper than np.unique).
                scratch[cand] = True
                fresh = np.flatnonzero(scratch)
                scratch[fresh] = False
                larr[fresh] = d
                frontier = fresh
            lev = self._dist_cache[di] = larr.tolist()  # repro: noqa[PERF002] - cache fill; list indexing beats np scalars when unranking
        return lev

    def _counts_to(self, di: int) -> List[int]:
        """Per-destination shortest-path multiplicity memo (-1 = unknown).

        Entries are filled on demand by :meth:`_count_from`, so only nodes
        actually on queried routes are ever computed.
        """
        counts = self._spc_cache.get(di)
        if counts is None:
            names, _, _, _, _ = self._csr()
            counts = self._spc_cache[di] = [-1] * len(names)  # repro: noqa[PERF001] - per-destination memo init
            counts[di] = 1
        return counts

    def _count_from(
        self, i: int, lev: List[int], counts: List[int], adj: List[List[int]]
    ) -> int:
        c = counts[i]
        if c >= 0:
            return c
        d = lev[i]
        c = 0
        for j in adj[i]:
            if lev[j] == d - 1:
                c += self._count_from(j, lev, counts, adj)
        counts[i] = c
        return c

    def all_shortest_paths(self, src: str, dst: str) -> List[List[str]]:
        """All equal-cost shortest node paths, deterministically ordered.

        Paths are enumerated from the destination-rooted BFS levels
        (:meth:`_levels_to`): from ``src``, every neighbour one level
        closer to ``dst`` extends a shortest path. Visiting name-ordered
        neighbours depth-first yields the paths in lexicographic order —
        byte-identical to the previous ``networkx`` enumeration + sort.
        """
        if src not in self.g:
            raise TopologyError(f"unknown node {src!r}")
        if dst not in self.g:
            raise TopologyError(f"unknown node {dst!r}")
        if src == dst:
            return [[src]]
        names, index, _, _, adj = self._csr()
        lev = self._levels_to(index[dst])
        si = index[src]
        if lev[si] < 0:
            raise TopologyError(f"no path {src!r} -> {dst!r}")
        out: List[List[str]] = []
        path: List[int] = [si]

        def _extend(i: int, d: int) -> None:
            if d == 0:
                out.append([names[j] for j in path])
                return
            for j in adj[i]:
                if lev[j] == d - 1:
                    path.append(j)
                    _extend(j, d - 1)
                    path.pop()

        _extend(si, lev[si])
        return out

    def shortest_path_count(self, src: str, dst: str) -> int:
        """Number of equal-cost shortest paths from ``src`` to ``dst``."""
        if src not in self.g:
            raise TopologyError(f"unknown node {src!r}")
        if dst not in self.g:
            raise TopologyError(f"unknown node {dst!r}")
        if src == dst:
            return 1
        _, index, _, _, adj = self._csr()
        di = index[dst]
        lev = self._levels_to(di)
        si = index[src]
        if lev[si] < 0:
            raise TopologyError(f"no path {src!r} -> {dst!r}")
        return self._count_from(si, lev, self._counts_to(di), adj)

    def shortest_path_by_index(self, src: str, dst: str, k: int) -> List[str]:
        """The ``k``-th shortest path in the :meth:`all_shortest_paths` order.

        Materializes exactly one path by unranking ``k`` against the
        per-node path counts — O(hops × degree) instead of enumerating
        every equal-cost path. This is the hashed-selection fast path for
        :class:`~repro.network.routing.StaticRouter` and
        :class:`~repro.network.routing.EcmpRouter`.
        """
        total = self.shortest_path_count(src, dst)
        if not 0 <= k < total:
            raise TopologyError(
                f"path index {k} out of range for {src!r} -> {dst!r} "
                f"({total} paths)"
            )
        if src == dst:
            return [src]  # repro: noqa[PERF001] - the returned route
        names, index, _, _, adj = self._csr()
        di = index[dst]
        lev = self._levels_to(di)
        counts = self._counts_to(di)
        path = [index[src]]  # repro: noqa[PERF001] - the route being built (function output)
        i = path[0]
        d = lev[i]
        while d > 0:
            for j in adj[i]:
                if lev[j] == d - 1:
                    c = self._count_from(j, lev, counts, adj)
                    if k < c:
                        path.append(j)
                        i = j
                        d -= 1
                        break
                    k -= c
        return [names[j] for j in path]  # repro: noqa[PERF001] - the returned route

    def bisection_bandwidth(self, partition: Set[str]) -> float:
        """Total capacity crossing a node partition (one direction)."""
        total = 0.0
        for a, b, data in self.g.edges(data=True):
            if (a in partition) != (b in partition):
                total += data["capacity"]
        return total
