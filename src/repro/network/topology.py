"""Fabric graph: hosts, switches, and capacitated directed links."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.units import BytesPerSec
from repro.errors import TopologyError

#: A directed link is identified by its (src, dst) node names.
LinkId = Tuple[str, str]


class Fabric:
    """A cluster network: an undirected graph whose edges carry capacity.

    Nodes are named strings with a ``kind`` attribute (``host``, ``leaf``,
    ``spine``, ``core``). Capacities are full-duplex: each direction of an
    edge is an independent :data:`LinkId` with the edge's capacity.
    """

    def __init__(self, name: str = "fabric") -> None:
        self.name = name
        self.g = nx.Graph()
        self._zone: Dict[str, int] = {}

    # -- construction ----------------------------------------------------------

    def add_host(self, name: str, zone: int = 0, **attrs) -> None:
        """Add an endpoint (compute or storage node NIC port)."""
        if name in self.g:
            raise TopologyError(f"duplicate node {name!r}")
        self.g.add_node(name, kind="host", **attrs)
        self._zone[name] = zone

    def add_switch(self, name: str, tier: str, zone: int = 0, **attrs) -> None:
        """Add a switch at tier ``leaf`` / ``spine`` / ``core``."""
        if name in self.g:
            raise TopologyError(f"duplicate node {name!r}")
        if tier not in ("leaf", "spine", "core"):
            raise TopologyError(f"unknown switch tier {tier!r}")
        self.g.add_node(name, kind=tier, **attrs)
        self._zone[name] = zone

    def add_link(self, a: str, b: str, capacity: BytesPerSec) -> None:
        """Connect two nodes with a full-duplex link of ``capacity`` B/s."""
        if a not in self.g or b not in self.g:
            raise TopologyError(f"link endpoints must exist: {a!r}, {b!r}")
        if capacity <= 0:
            raise TopologyError(f"capacity must be positive, got {capacity}")
        if self.g.has_edge(a, b):
            raise TopologyError(f"duplicate link {a!r}-{b!r}")
        self.g.add_edge(a, b, capacity=float(capacity))

    # -- queries ---------------------------------------------------------------

    @property
    def hosts(self) -> List[str]:
        """All endpoint names, sorted."""
        return sorted(n for n, d in self.g.nodes(data=True) if d["kind"] == "host")

    def switches(self, tier: Optional[str] = None) -> List[str]:
        """Switch names, optionally filtered by tier."""
        tiers = {"leaf", "spine", "core"} if tier is None else {tier}
        return sorted(n for n, d in self.g.nodes(data=True) if d["kind"] in tiers)

    def zone_of(self, node: str) -> int:
        """The fat-tree zone a node belongs to."""
        try:
            return self._zone[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}")

    def capacity(self, link: LinkId) -> BytesPerSec:
        """Capacity in bytes/s of one direction of a link."""
        a, b = link
        try:
            return self.g.edges[a, b]["capacity"]
        except KeyError:
            raise TopologyError(f"no link {a!r}-{b!r}")

    def neighbors(self, node: str) -> List[str]:
        """Adjacent node names, sorted (deterministic routing)."""
        return sorted(self.g.neighbors(node))

    def degree(self, node: str) -> int:
        """Number of links attached to ``node``."""
        return self.g.degree(node)

    def path_links(self, path: List[str]) -> List[LinkId]:
        """Convert a node path to its directed links, validating edges."""
        links: List[LinkId] = []
        for a, b in zip(path, path[1:]):
            if not self.g.has_edge(a, b):
                raise TopologyError(f"path uses missing link {a!r}-{b!r}")
            links.append((a, b))
        return links

    def all_shortest_paths(self, src: str, dst: str) -> List[List[str]]:
        """All equal-cost shortest node paths, deterministically ordered."""
        if src == dst:
            return [[src]]
        try:
            paths = list(nx.all_shortest_paths(self.g, src, dst))
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path {src!r} -> {dst!r}")
        except nx.NodeNotFound as exc:
            raise TopologyError(str(exc))
        paths.sort()
        return paths

    def bisection_bandwidth(self, partition: Set[str]) -> float:
        """Total capacity crossing a node partition (one direction)."""
        total = 0.0
        for a, b, data in self.g.edges(data=True):
            if (a in partition) != (b in partition):
                total += data["capacity"]
        return total
