"""Link flash cuts and their effect on live traffic (Section VII-C2).

"Network flash cuts can lead to application communication disruption,
even task failures. Since most tasks run on multiple nodes, an issue on
a single node can impact many others."

This module injects link failures into a :class:`Fabric`, recomputes
static routes around them, and classifies the impact on a set of flows:

* **rerouted** — an alternate equal-cost path exists (leaf-spine links in
  a fat-tree); the flow continues, possibly slower,
* **disconnected** — no path remains (a host's single access link died);
  on Fire-Flyer this kills the task on that node, which is why single-NIC
  nodes make IB flash cuts so visible in the failure telemetry.

The unified entry point is :func:`assess_fault_plan`: it consumes a
:class:`~repro.faults.FaultPlan` (``link_flap`` and ``nic_down`` events),
replays the failure/recovery timeline, and reroutes or drains every flow
per event, emitting ``faults_injected{kind}`` counters, per-event
telemetry instants, and ``recovery_time_s{layer="network"}``
observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.errors import TopologyError
from repro.faults import FaultEvent, FaultPlan
from repro.network.flows import Flow, FlowSim, LinkEvent
from repro.network.routing import StaticRouter
from repro.network.topology import Fabric


@dataclass(frozen=True)
class ImpactReport:
    """Effect of a set of link failures on a flow population."""

    failed_links: Tuple[Tuple[str, str], ...]
    rerouted: Tuple[int, ...]  # flow ids that changed paths
    disconnected: Tuple[int, ...]  # flow ids with no remaining path
    unaffected: Tuple[int, ...]
    min_rate_before: float
    min_rate_after: float

    @property
    def tasks_killed(self) -> int:
        """Flows that would abort (communication disruption)."""
        return len(self.disconnected)


class DegradedFabric(Fabric):
    """A fabric view with some links removed."""

    @classmethod
    def from_fabric(cls, base: Fabric, dead_links: Sequence[Tuple[str, str]]) -> "DegradedFabric":
        """Copy ``base`` without the dead links."""
        view = cls(name=base.name + "-degraded")
        view.g = base.g.copy()
        view._zone = dict(base._zone)
        for a, b in dead_links:
            if not view.g.has_edge(a, b):
                raise TopologyError(f"no link {a!r}-{b!r} to fail")
            view.g.remove_edge(a, b)
        return view


def _classify(
    fabric: Fabric,
    flows: Sequence[Flow],
    dead_links: Sequence[Tuple[str, str]],
) -> ImpactReport:
    """Classify every flow's fate under the given link failures.

    This is the reroute/drain core: surviving flows are re-solved on the
    degraded fabric (rerouted ones on their new paths), disconnected
    flows are drained from the population.
    """
    router_before = StaticRouter(fabric)
    sim_before = FlowSim(fabric, router=router_before)
    rates_before = sim_before.instantaneous_rates(list(flows))

    degraded = DegradedFabric.from_fabric(fabric, dead_links)
    router_after = StaticRouter(degraded)
    rerouted: List[int] = []
    disconnected: List[int] = []
    unaffected: List[int] = []
    alive: List[Flow] = []
    for f in flows:
        before = router_before.route(f.src, f.dst, f.flow_id)
        try:
            after = router_after.route(f.src, f.dst, f.flow_id)
        except TopologyError:
            disconnected.append(f.flow_id)
            continue
        alive.append(f)
        if after != before:
            rerouted.append(f.flow_id)
        else:
            unaffected.append(f.flow_id)

    if alive:
        sim_after = FlowSim(degraded, router=router_after)
        rates_after = sim_after.instantaneous_rates(alive)
        min_after = min(rates_after.values())
    else:
        min_after = 0.0
    return ImpactReport(
        failed_links=tuple(dead_links),
        rerouted=tuple(sorted(rerouted)),
        disconnected=tuple(sorted(disconnected)),
        unaffected=tuple(sorted(unaffected)),
        min_rate_before=min(rates_before.values()) if rates_before else 0.0,
        min_rate_after=min_after,
    )


# -- fault-plan API ----------------------------------------------------------------


@dataclass(frozen=True)
class FaultImpact:
    """One plan event's impact on the flow population."""

    event: FaultEvent
    dead_links: Tuple[Tuple[str, str], ...]  # links down at event time
    report: ImpactReport
    recovered_at: Optional[float]  # link-restoration time (flaps only)


@dataclass(frozen=True)
class PlanAssessment:
    """Aggregate outcome of replaying a plan's network events."""

    impacts: Tuple[FaultImpact, ...]

    @property
    def flows_rerouted(self) -> int:
        """Distinct flows that changed path at least once."""
        ids: Set[int] = set()
        for i in self.impacts:
            ids.update(i.report.rerouted)
        return len(ids)

    @property
    def flows_disconnected(self) -> int:
        """Distinct flows drained (no path) at least once."""
        ids: Set[int] = set()
        for i in self.impacts:
            ids.update(i.report.disconnected)
        return len(ids)

    @property
    def min_rate_floor(self) -> float:
        """Worst surviving-flow rate across all events (0 if none alive)."""
        if not self.impacts:
            return 0.0
        return min(i.report.min_rate_after for i in self.impacts)


def links_for_event(fabric: Fabric, event: FaultEvent) -> List[Tuple[str, str]]:
    """The fabric links an event takes down.

    ``link_flap`` names its link directly; ``nic_down`` kills every
    access link of the named host (all of them on single-NIC nodes —
    the paper's reason these dominate task kills).
    """
    if event.kind == "link_flap":
        a, b = event.link
        if not fabric.g.has_edge(a, b):
            raise TopologyError(f"no link {a!r}-{b!r} to fail")
        return [(a, b)]
    if event.kind == "nic_down":
        if event.node not in fabric.g:
            raise TopologyError(f"no host {event.node!r} in fabric")
        return sorted((event.node, nbr) for nbr in fabric.g.neighbors(event.node))
    raise TopologyError(f"event kind {event.kind!r} has no network effect")


def plan_link_events(
    fabric: Fabric,
    plan: FaultPlan,
    nic_repair_s: Optional[float] = None,
) -> List[LinkEvent]:
    """Compile a plan's network events into :class:`LinkEvent` boundaries.

    Each ``link_flap`` becomes a ``down`` at its time and an ``up`` when
    the flap expires; ``nic_down`` downs every access link of the host —
    permanently, or until ``nic_repair_s`` later when a repair turnaround
    is given (the platform week swaps NICs). The result feeds
    ``FlowSim.run(flows, link_events=...)`` so a live simulation reroutes
    through the warm engine's in-place path instead of being rebuilt on a
    degraded fabric per event.
    """
    events: List[LinkEvent] = []
    for ev in plan.of_kind("link_flap", "nic_down"):
        up_at: Optional[float] = None
        if ev.kind == "link_flap":
            up_at = ev.time + ev.duration
        elif nic_repair_s is not None:
            up_at = ev.time + nic_repair_s
        for link in links_for_event(fabric, ev):
            events.append(LinkEvent(time=ev.time, link=link, kind="down"))
            if up_at is not None:
                events.append(LinkEvent(time=up_at, link=link, kind="up"))
    events.sort(key=lambda e: e.time)
    return events


def assess_fault_plan(
    fabric: Fabric,
    flows: Sequence[Flow],
    plan: FaultPlan,
) -> PlanAssessment:
    """Replay a plan's network events against a flow population.

    At each ``link_flap``/``nic_down`` event the set of links that are
    *currently* down is recomputed (flaps expire after their duration,
    NIC losses persist), flows are rerouted or drained on the degraded
    fabric, and telemetry records the injection and the link-restoration
    recovery time.
    """
    events = list(plan.of_kind("link_flap", "nic_down"))
    sess = telemetry.session()
    impacts: List[FaultImpact] = []
    #: (expiry, links) for active flaps; None expiry = permanent.
    active: List[Tuple[Optional[float], Tuple[Tuple[str, str], ...]]] = []
    for event in events:
        taken_down = links_for_event(fabric, event)
        if event.kind == "link_flap":
            expiry: Optional[float] = event.time + event.duration
        else:
            expiry = None
        active = [
            (exp, links) for exp, links in active
            if exp is None or exp > event.time
        ]
        active.append((expiry, tuple(taken_down)))
        dead_now: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()
        for _exp, links in active:
            for link in links:
                if link not in seen:
                    seen.add(link)
                    dead_now.append(link)
        report = _classify(fabric, flows, dead_now)
        impacts.append(
            FaultImpact(
                event=event,
                dead_links=tuple(dead_now),
                report=report,
                recovered_at=expiry,
            )
        )
        if sess is not None:
            sess.registry.counter("faults_injected", kind=event.kind).inc()
            if event.kind == "link_flap":
                sess.registry.histogram(
                    "recovery_time_s", layer="network"
                ).observe(event.duration, ts=event.time)
            if sess.tracer is not None:
                sess.tracer.instant(
                    f"fault:{event.kind}", event.time, track="faults/network",
                    cat="faults",
                    args={"links": len(dead_now),
                          "rerouted": len(report.rerouted),
                          "drained": len(report.disconnected)},
                )
    return PlanAssessment(impacts=tuple(impacts))
