"""Link flash cuts and their effect on live traffic (Section VII-C2).

"Network flash cuts can lead to application communication disruption,
even task failures. Since most tasks run on multiple nodes, an issue on
a single node can impact many others."

This module injects link failures into a :class:`Fabric`, recomputes
static routes around them, and classifies the impact on a set of flows:

* **rerouted** — an alternate equal-cost path exists (leaf-spine links in
  a fat-tree); the flow continues, possibly slower,
* **disconnected** — no path remains (a host's single access link died);
  on Fire-Flyer this kills the task on that node, which is why single-NIC
  nodes make IB flash cuts so visible in the failure telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.network.flows import Flow, FlowSim
from repro.network.routing import StaticRouter
from repro.network.topology import Fabric


@dataclass(frozen=True)
class ImpactReport:
    """Effect of a set of link failures on a flow population."""

    failed_links: Tuple[Tuple[str, str], ...]
    rerouted: Tuple[int, ...]  # flow ids that changed paths
    disconnected: Tuple[int, ...]  # flow ids with no remaining path
    unaffected: Tuple[int, ...]
    min_rate_before: float
    min_rate_after: float

    @property
    def tasks_killed(self) -> int:
        """Flows that would abort (communication disruption)."""
        return len(self.disconnected)


class DegradedFabric(Fabric):
    """A fabric view with some links removed."""

    @classmethod
    def from_fabric(cls, base: Fabric, dead_links: Sequence[Tuple[str, str]]) -> "DegradedFabric":
        """Copy ``base`` without the dead links."""
        view = cls(name=base.name + "-degraded")
        view.g = base.g.copy()
        view._zone = dict(base._zone)
        for a, b in dead_links:
            if not view.g.has_edge(a, b):
                raise TopologyError(f"no link {a!r}-{b!r} to fail")
            view.g.remove_edge(a, b)
        return view


def assess_link_failures(
    fabric: Fabric,
    flows: Sequence[Flow],
    dead_links: Sequence[Tuple[str, str]],
) -> ImpactReport:
    """Classify every flow's fate under the given link failures."""
    router_before = StaticRouter(fabric)
    sim_before = FlowSim(fabric, router=router_before)
    rates_before = sim_before.instantaneous_rates(list(flows))

    degraded = DegradedFabric.from_fabric(fabric, dead_links)
    router_after = StaticRouter(degraded)
    rerouted: List[int] = []
    disconnected: List[int] = []
    unaffected: List[int] = []
    alive: List[Flow] = []
    for f in flows:
        before = router_before.route(f.src, f.dst, f.flow_id)
        try:
            after = router_after.route(f.src, f.dst, f.flow_id)
        except TopologyError:
            disconnected.append(f.flow_id)
            continue
        alive.append(f)
        if after != before:
            rerouted.append(f.flow_id)
        else:
            unaffected.append(f.flow_id)

    if alive:
        sim_after = FlowSim(degraded, router=router_after)
        rates_after = sim_after.instantaneous_rates(alive)
        min_after = min(rates_after.values())
    else:
        min_after = 0.0
    return ImpactReport(
        failed_links=tuple(dead_links),
        rerouted=tuple(sorted(rerouted)),
        disconnected=tuple(sorted(disconnected)),
        unaffected=tuple(sorted(unaffected)),
        min_rate_before=min(rates_before.values()) if rates_before else 0.0,
        min_rate_after=min_after,
    )
