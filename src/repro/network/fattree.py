"""Fat-tree family builders and switch-count accounting (Sections III-B, IX).

Terminology follows the paper: a *two-layer* fat-tree is leaf+spine with
full bisection; the Fire-Flyer production network is two such trees
("zones") joined by a limited number of inter-zone links; the DGX
comparison uses a *three-layer* (pod-based) fat-tree; the next-generation
proposal (Section IX) uses several independent two-layer *planes*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import TopologyError
from repro.hardware.spec import QM8700_SWITCH, SwitchSpec
from repro.network.topology import Fabric


@dataclass(frozen=True)
class FatTreeCounts:
    """Switch inventory of a fat-tree configuration."""

    leaf: int
    spine: int
    core: int
    max_hosts: int

    @property
    def total(self) -> int:
        """Total switches."""
        return self.leaf + self.spine + self.core


def two_layer_counts(n_hosts: int, switch: SwitchSpec = QM8700_SWITCH) -> FatTreeCounts:
    """Switch counts for a full-bisection two-layer fat-tree.

    With radix ``r``: each leaf has r/2 down-links and r/2 up-links (one per
    spine); there are exactly r/2 spines and at most r leaves, so max hosts
    = r * r/2 (800 for the 40-port QM8700).
    """
    r = switch.ports
    if n_hosts < 1:
        raise TopologyError("n_hosts must be >= 1")
    down = r // 2
    leaves = math.ceil(n_hosts / down)
    if leaves > r:
        raise TopologyError(
            f"{n_hosts} hosts exceed a two-layer fat-tree on {switch.name} "
            f"(max {r * down})"
        )
    return FatTreeCounts(leaf=leaves, spine=down, core=0, max_hosts=r * down)


def three_layer_counts(
    n_hosts: int,
    switch: SwitchSpec = QM8700_SWITCH,
    provisioned_pods: Optional[int] = None,
) -> FatTreeCounts:
    """Switch counts for a pod-based three-layer fat-tree.

    Each pod holds r/2 leaves and r/2 spines and serves (r/2)^2 hosts. With
    ``p`` pods at full bisection the core layer needs (r/2) * p/2 switches
    (each of the r/2 core *groups* aggregates one spine position across all
    pods, p/2 switches per group).

    ``provisioned_pods`` sizes the core layer for future pods without
    building their leaves/spines — the paper's 10,000-endpoint DGX network
    provisions 32 pods of core (320 switches) while installing 25 pods of
    leaf/spine (500 each).
    """
    r = switch.ports
    half = r // 2
    hosts_per_pod = half * half
    pods = math.ceil(n_hosts / hosts_per_pod)
    if pods > r:
        raise TopologyError(f"{n_hosts} hosts exceed a {r}-ary three-layer fat-tree")
    core_pods = provisioned_pods if provisioned_pods is not None else pods
    if core_pods < pods:
        raise TopologyError("provisioned_pods below the built pod count")
    leaves = math.ceil(n_hosts / half)
    spines = pods * half
    core = half * math.ceil(core_pods / 2)
    return FatTreeCounts(
        leaf=leaves,
        spine=spines,
        core=core,
        max_hosts=r * hosts_per_pod,
    )


def multi_plane_counts(
    n_hosts: int,
    planes: int = 4,
    switch: SwitchSpec = QM8700_SWITCH,
) -> FatTreeCounts:
    """Switch counts for the Section-IX multi-plane design.

    Every host has ``planes`` NICs, one per independent two-layer plane, so
    each plane carries ``n_hosts`` endpoints. A 128-port switch supports
    64 x 128 = 8,192 hosts per plane; 4 planes reach 32,768 GPUs.
    """
    if planes < 1:
        raise TopologyError("planes must be >= 1")
    per_plane = two_layer_counts(n_hosts, switch)
    return FatTreeCounts(
        leaf=per_plane.leaf * planes,
        spine=per_plane.spine * planes,
        core=0,
        max_hosts=per_plane.max_hosts,
    )


# ---------------------------------------------------------------------------
# Graph builders
# ---------------------------------------------------------------------------


def two_layer_fat_tree(
    n_hosts: int,
    switch: SwitchSpec = QM8700_SWITCH,
    zone: int = 0,
    prefix: str = "",
    fabric: Optional[Fabric] = None,
    host_names: Optional[List[str]] = None,
) -> Fabric:
    """Build a two-layer fat-tree as a :class:`Fabric`.

    ``host_names`` lets callers attach meaningfully named endpoints
    (compute/storage NIC ports); otherwise hosts are ``{prefix}h{i}``.
    """
    counts = two_layer_counts(n_hosts, switch)
    fab = fabric if fabric is not None else Fabric(name=f"{prefix}fat-tree")
    cap = switch.port_rate
    leaves = [f"{prefix}leaf{i}" for i in range(counts.leaf)]
    spines = [f"{prefix}spine{i}" for i in range(counts.spine)]
    for s in spines:
        fab.add_switch(s, tier="spine", zone=zone)
    for l in leaves:
        fab.add_switch(l, tier="leaf", zone=zone)
        for s in spines:
            fab.add_link(l, s, cap)
    if host_names is not None and len(host_names) != n_hosts:
        raise TopologyError("host_names length must equal n_hosts")
    down = switch.ports // 2
    for i in range(n_hosts):
        name = host_names[i] if host_names else f"{prefix}h{i}"
        fab.add_host(name, zone=zone)
        fab.add_link(name, leaves[i // down], cap)
    return fab


def two_zone_network(
    hosts_per_zone: int,
    switch: SwitchSpec = QM8700_SWITCH,
    interzone_links: int = 4,
    zone0_hosts: Optional[List[str]] = None,
    zone1_hosts: Optional[List[str]] = None,
) -> Fabric:
    """Two two-layer fat-trees joined spine-to-spine by a few links.

    The limited inter-zone capacity is exactly why the HAI platform limits
    cross-zone tasks to one (Section III-B); the double-binary-tree
    allreduce then crosses the boundary on only one node pair.
    """
    fab = Fabric(name="two-zone")
    two_layer_fat_tree(
        hosts_per_zone, switch, zone=0, prefix="z0.", fabric=fab, host_names=zone0_hosts
    )
    two_layer_fat_tree(
        hosts_per_zone, switch, zone=1, prefix="z1.", fabric=fab, host_names=zone1_hosts
    )
    n_spine = two_layer_counts(hosts_per_zone, switch).spine
    if not 1 <= interzone_links <= n_spine:
        raise TopologyError(
            f"interzone_links must be in [1, {n_spine}], got {interzone_links}"
        )
    for i in range(interzone_links):
        fab.add_link(f"z0.spine{i}", f"z1.spine{i}", switch.port_rate)
    return fab


def fire_flyer_network(
    gpu_nodes: int = 1200,
    storage_nodes: int = 180,
    switch: SwitchSpec = QM8700_SWITCH,
    interzone_links: int = 4,
) -> Fabric:
    """The production Fire-Flyer 2 network, optionally scaled down.

    GPU compute nodes (one NIC each) are split evenly across the two zones
    (the paper's ~600 per zone); every storage node is dual-homed with one
    NIC in each zone so all compute nodes share one storage service
    (Section III-B). Each zone must fit the 800-endpoint two-layer limit.
    """
    if gpu_nodes < 2:
        raise TopologyError("need at least one GPU node per zone")
    z0_gpu = math.ceil(gpu_nodes / 2)
    z1_gpu = gpu_nodes - z0_gpu
    zone0 = [f"cn{i}" for i in range(z0_gpu)]
    zone1 = [f"cn{i}" for i in range(z0_gpu, gpu_nodes)]
    zone0 += [f"st{i}.nic0" for i in range(storage_nodes)]
    zone1 += [f"st{i}.nic1" for i in range(storage_nodes)]
    per_zone = max(len(zone0), len(zone1))
    zone0 += [f"z0.spare{i}" for i in range(per_zone - len(zone0))]
    zone1 += [f"z1.spare{i}" for i in range(per_zone - len(zone1))]
    return two_zone_network(
        per_zone,
        switch,
        interzone_links=interzone_links,
        zone0_hosts=zone0,
        zone1_hosts=zone1,
    )


def three_layer_fat_tree(
    n_hosts: int,
    switch: SwitchSpec = QM8700_SWITCH,
) -> Fabric:
    """Build a pod-based three-layer fat-tree graph.

    Used for cost/congestion comparison against the two-zone design. Core
    group ``j`` aggregates spine position ``j`` of every pod.
    """
    r = switch.ports
    half = r // 2
    counts = three_layer_counts(n_hosts, switch)
    pods = math.ceil(n_hosts / (half * half))
    fab = Fabric(name="three-layer")
    cap = switch.port_rate
    cores_per_group = math.ceil(pods / 2)
    for j in range(half):
        for c in range(cores_per_group):
            fab.add_switch(f"core{j}.{c}", tier="core")
    host_idx = 0
    for p in range(pods):
        for j in range(half):
            spine = f"p{p}.spine{j}"
            fab.add_switch(spine, tier="spine")
            # Spine j spreads its r/2 uplinks over group j's cores.
            links_per_core = half // cores_per_group or 1
            for c in range(cores_per_group):
                fab.add_link(spine, f"core{j}.{c}", cap * links_per_core)
        for l in range(half):
            leaf = f"p{p}.leaf{l}"
            fab.add_switch(leaf, tier="leaf")
            for j in range(half):
                fab.add_link(leaf, f"p{p}.spine{j}", cap)
            for _ in range(half):
                if host_idx >= n_hosts:
                    break
                fab.add_host(f"h{host_idx}")
                fab.add_link(f"h{host_idx}", leaf, cap)
                host_idx += 1
    return fab


def multi_plane_network(
    n_hosts: int,
    planes: int = 4,
    switch: SwitchSpec = QM8700_SWITCH,
) -> List[Fabric]:
    """Section-IX next-gen network: independent planes, one per host NIC."""
    if planes < 1:
        raise TopologyError("planes must be >= 1")
    fabrics = []
    for p in range(planes):
        host_names = [f"h{i}.nic{p}" for i in range(n_hosts)]
        fabrics.append(
            two_layer_fat_tree(
                n_hosts, switch, prefix=f"pl{p}.", host_names=host_names
            )
        )
    return fabrics
