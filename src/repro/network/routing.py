"""Routing policies over a :class:`~repro.network.topology.Fabric`.

The paper found that under heavy storage incast, *adaptive* routing spreads
congestion while *static* routing plus deliberate node placement keeps the
network congestion-free (Section VI-A2). We implement all three policies so
that benchmark ablations can reproduce that comparison:

* :class:`StaticRouter` — deterministic destination-based path choice
  (what the production network runs),
* :class:`EcmpRouter` — per-flow hashed choice among equal-cost paths,
* :class:`AdaptiveRouter` — least-loaded path at flow arrival, given a
  live link-load view.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Mapping, Optional

from repro.errors import RoutingError
from repro.network.topology import Fabric, LinkId


def _stable_hash(*parts: object) -> int:
    """Deterministic (process-independent) hash for path selection."""
    data = "|".join(map(str, parts)).encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class Router(ABC):
    """Chooses a node path for each flow."""

    #: Whether route choice depends on the live link-load view. Load-
    #: independent routers return the same path for the same
    #: (src, dst, flow_id) regardless of traffic, which lets the flow
    #: simulator memoize allocations.
    load_dependent: bool = False

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self._paths_cache: Dict[tuple, List[List[str]]] = {}

    def set_load_view(self, view: Optional[Callable[[], Mapping[LinkId, float]]]) -> None:
        """Install a live link-load view (link -> bytes/s).

        The flow simulator calls this once at construction so adaptive
        routers see its instantaneous link loads. Load-independent routers
        ignore it; :class:`AdaptiveRouter` overrides.
        """

    def _candidates(self, src: str, dst: str) -> List[List[str]]:
        key = (src, dst)
        if key not in self._paths_cache:
            self._paths_cache[key] = self.fabric.all_shortest_paths(src, dst)
        return self._paths_cache[key]

    @abstractmethod
    def route(self, src: str, dst: str, flow_id: object = None) -> List[str]:
        """Return the node path for a flow from ``src`` to ``dst``."""

    def route_links(self, src: str, dst: str, flow_id: object = None) -> List[LinkId]:
        """Directed links of the chosen path."""
        return self.fabric.path_links(self.route(src, dst, flow_id))

    def memo_key(self, src: str, dst: str, flow_id: object) -> tuple:
        """The tuple that fully determines :meth:`route`'s choice.

        Load-independent routers are memoized on this by the flow
        simulator; dropping route-irrelevant components (a
        destination-based router ignores ``flow_id``) turns repeat
        traffic between the same endpoints into cache hits. Meaningless
        for load-dependent routers.
        """
        return (src, dst, flow_id)


class StaticRouter(Router):
    """Destination-based deterministic routing.

    Every (src, dst) pair always uses the same path, chosen by hashing the
    *destination* (mirroring IB's linear forwarding tables): traffic toward
    one destination converges onto stable links, so operators can spread
    load by placing nodes deliberately — the paper's approach.
    """

    def __init__(self, fabric: Fabric) -> None:
        super().__init__(fabric)
        # One blake2b per *distinct destination*, not per route call
        # (PERF-sweep finding: route construction is per-admit code).
        self._dst_hash: Dict[str, int] = {}

    def route(self, src: str, dst: str, flow_id: object = None) -> List[str]:
        # Unrank the hashed choice directly — no candidate enumeration.
        n = self.fabric.shortest_path_count(src, dst)
        h = self._dst_hash.get(dst)
        if h is None:
            h = self._dst_hash[dst] = _stable_hash(dst)
        return self.fabric.shortest_path_by_index(src, dst, h % n)

    def memo_key(self, src: str, dst: str, flow_id: object) -> tuple:
        return (src, dst)


class EcmpRouter(Router):
    """Per-flow ECMP: hash (src, dst, flow_id) across equal-cost paths."""

    def route(self, src: str, dst: str, flow_id: object = None) -> List[str]:
        n = self.fabric.shortest_path_count(src, dst)
        return self.fabric.shortest_path_by_index(
            src, dst, _stable_hash(src, dst, flow_id) % n
        )


class AdaptiveRouter(Router):
    """Pick the least-loaded candidate path at flow arrival.

    ``load_view`` maps directed links to current utilization; ties break
    deterministically. Because it reacts to instantaneous load, bursts of
    correlated flows all dodge onto the same 'quiet' links and spread
    congestion — the behaviour the paper observed and disabled.
    """

    load_dependent = True

    def __init__(
        self,
        fabric: Fabric,
        load_view: Optional[Callable[[], Mapping[LinkId, float]]] = None,
    ) -> None:
        super().__init__(fabric)
        self._load_view = load_view or (lambda: {})

    def set_load_view(self, view: Optional[Callable[[], Mapping[LinkId, float]]]) -> None:
        self._load_view = view if view is not None else (lambda: {})

    def route(self, src: str, dst: str, flow_id: object = None) -> List[str]:
        cands = self._candidates(src, dst)
        loads = self._load_view()

        def path_load(path: List[str]) -> float:
            return max(
                (loads.get((a, b), 0.0) for a, b in zip(path, path[1:])),
                default=0.0,
            )

        best = min(enumerate(cands), key=lambda kv: (path_load(kv[1]), kv[0]))
        return best[1]


def make_router(kind: str, fabric: Fabric, **kwargs) -> Router:
    """Factory: ``static`` / ``ecmp`` / ``adaptive``."""
    if kind == "static":
        return StaticRouter(fabric)
    if kind == "ecmp":
        return EcmpRouter(fabric)
    if kind == "adaptive":
        return AdaptiveRouter(fabric, **kwargs)
    raise RoutingError(f"unknown router kind {kind!r}")
