"""Fluid (flow-level) network simulation with max-min fair sharing.

Flows are modelled as fluid streams: at any instant, the rate of every
active flow is its weighted max-min fair share over the links of its route.
The simulator advances from event to event (flow arrival or completion),
recomputing shares whenever the active set changes — the standard fluid
abstraction for lossless credit-flow-controlled fabrics like InfiniBand.

QoS enters in two ways (see :mod:`repro.network.qos`): Virtual-Lane
isolation gives flows class weights, and disabling isolation applies a
head-of-line-blocking efficiency penalty on links carrying mixed classes.

The engine is *incremental* and *vectorized* (see ``docs/PERFORMANCE.md``):
per-link membership and traffic-class counts are maintained across events
(updated on admit/finish instead of rebuilt from every active flow),
simultaneous completions are retired in one batch before the single
recompute, repeated :meth:`FlowSim.instantaneous_rates` calls with an
unchanged flow set are memoized, and the allocation itself runs on the
NumPy incidence-matrix solver. ``engine="reference"`` selects the original
pure-Python per-event rebuild (the specification the vectorized engine is
property-tested against, and the baseline ``benchmarks/test_perf_flowsim.py``
measures speedups over). :attr:`FlowSim.stats` exposes perf counters.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, namedtuple
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.analysis import sanitizer as _sanitizer
from repro.errors import TopologyError
from repro.fairshare import Constraint, maxmin_rates, maxmin_rates_vectorized
from repro.network.qos import ServiceLevel, TrafficClassConfig, default_qos
from repro.units import Bytes, BytesPerSec, Seconds
from repro.network.routing import Router, StaticRouter
from repro.network.topology import Fabric, LinkId
from repro.perf import PerfCounters

_ids = itertools.count()

#: A flow counts as complete when its remaining bytes drop below this
#: fraction of its size. The tolerance is *relative* so that float rounding
#: in ``remaining -= rate * dt`` (which scales with flow size) terminates
#: multi-TB 3FS transfers, while tiny control flows are not declared done
#: while a meaningful fraction of their payload is still in flight — an
#: absolute cutoff cannot serve both ends of that range.
COMPLETION_EPS = 1e-9

#: instantaneous_rates memo entries kept (steady-state sweeps re-query a
#: handful of distinct flow sets).
_MEMO_SIZE = 16

#: Per-link capacity × HOL-efficiency constraint handed to the solver
#: (duck-typed stand-in for :class:`~repro.fairshare.Constraint` that skips
#: its defensive set copy on the per-event hot path).
_LinkConstraint = namedtuple("_LinkConstraint", ["capacity", "members", "name"])


@dataclass
class Flow:
    """One data transfer through the fabric."""

    src: str
    dst: str
    size: Bytes
    sl: ServiceLevel = ServiceLevel.OTHER
    start: Seconds = 0.0
    rate_cap: Optional[BytesPerSec] = None  # source NIC / application limit
    flow_id: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise TopologyError(f"flow size must be positive, got {self.size}")
        if self.start < 0:
            raise TopologyError("flow start must be >= 0")


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow."""

    flow: Flow
    start: Seconds
    finish: Seconds

    @property
    def duration(self) -> Seconds:
        """Seconds from start to completion."""
        return self.finish - self.start

    @property
    def mean_rate(self) -> BytesPerSec:
        """Average achieved bytes/s."""
        return self.flow.size / self.duration if self.duration > 0 else float("inf")


class FlowSim:
    """Event-driven fluid simulator over a :class:`Fabric`.

    ``engine`` selects the allocation path: ``"vectorized"`` (default) uses
    the NumPy solver with incremental link caches and memoization;
    ``"reference"`` reproduces the original pure-Python engine (per-event
    dict rebuilds, no memo) for equivalence testing and benchmarking.

    Link capacities are cached at first use, so the fabric should not be
    mutated while a simulator is attached to it (build a new :class:`FlowSim`
    for a degraded fabric, as :mod:`repro.network.linkfail` does).

    :attr:`stats` is a :class:`~repro.perf.PerfCounters` accumulating
    events, recomputes, memo/route-cache hits, solver iterations, and solve
    wall time across this instance's lifetime.
    """

    def __init__(
        self,
        fabric: Fabric,
        router: Optional[Router] = None,
        qos: Optional[TrafficClassConfig] = None,
        engine: str = "vectorized",
    ) -> None:
        if engine not in ("vectorized", "reference"):
            raise TopologyError(f"unknown flow engine {engine!r}")
        self.fabric = fabric
        self.qos = qos if qos is not None else default_qos()
        self.engine = engine
        self.stats = PerfCounters()
        self._sim_now = 0.0  # fluid-sim clock, read by telemetry samplers
        self._link_rates: Dict[LinkId, float] = {}
        self._cap_cache: Dict[LinkId, float] = {}
        self._route_memo: Dict[Tuple[str, str, object], List[LinkId]] = {}
        self._memo: "OrderedDict[tuple, Tuple[Dict[int, float], Dict[LinkId, float]]]" = OrderedDict()
        self.router = router if router is not None else StaticRouter(fabric)
        # Give adaptive routers a live load view.
        self.router.set_load_view(lambda: self._link_rates)

    # -- cached lookups ----------------------------------------------------------

    def _capacity(self, link: LinkId) -> BytesPerSec:
        cap = self._cap_cache.get(link)
        if cap is None:
            cap = self._cap_cache[link] = self.fabric.capacity(link)
        return cap

    def _route(self, f: Flow) -> List[LinkId]:
        """Route a flow, caching per (src, dst, flow_id) when routing is
        load-independent (adaptive choices must see fresh loads)."""
        if self.router.load_dependent:
            return self.router.route_links(f.src, f.dst, f.flow_id)
        key = (f.src, f.dst, f.flow_id)
        route = self._route_memo.get(key)
        if route is None:
            route = self.router.route_links(f.src, f.dst, f.flow_id)
            if len(self._route_memo) >= 65536:
                self._route_memo.clear()
            self._route_memo[key] = route
        else:
            self.stats.bump("route_cache_hits")
        return route

    # -- instantaneous allocation ------------------------------------------------

    def instantaneous_rates(
        self, flows: Sequence[Flow], routes: Optional[Dict[int, List[LinkId]]] = None
    ) -> Dict[int, float]:
        """Max-min rates if all ``flows`` were active right now.

        Returns flow_id -> bytes/s. Useful for steady-state bandwidth
        studies (e.g. the allreduce sweeps) without running a full sim.
        Results for an unchanged flow set are memoized (vectorized engine,
        load-independent routers, default routing only).
        """
        if not flows:
            return {}
        self.stats.bump("rate_queries")
        if routes is None:
            self._sim_now = 0.0  # standalone steady-state query
        memo_ok = (
            routes is None
            and self.engine == "vectorized"
            and not self.router.load_dependent
        )
        key = None
        if memo_ok:
            key = tuple(
                sorted(
                    (f.flow_id, f.src, f.dst, f.sl.value,
                     -1.0 if f.rate_cap is None else f.rate_cap)
                    for f in flows
                )
            )
            hit = self._memo.get(key)
            if hit is not None:
                self._memo.move_to_end(key)
                self.stats.bump("memo_hits")
                rates, link_rates = hit
                self._link_rates = dict(link_rates)
                return dict(rates)
        if routes is None:
            routes = {f.flow_id: self._route(f) for f in flows}
        rates = self._solve(flows, routes)
        if memo_ok:
            self._memo[key] = (dict(rates), dict(self._link_rates))
            if len(self._memo) > _MEMO_SIZE:
                self._memo.popitem(last=False)
        return rates

    def _solve(
        self,
        flows: Sequence[Flow],
        routes: Dict[int, List[LinkId]],
        link_members: Optional[Dict[LinkId, Set[int]]] = None,
        link_classes: Optional[Dict[LinkId, Dict[ServiceLevel, int]]] = None,
    ) -> Dict[int, float]:
        """One allocation round. ``link_members``/``link_classes`` are the
        incrementally-maintained caches from :meth:`run`; when absent they
        are rebuilt from scratch (standalone queries, reference engine)."""
        self.stats.bump("rate_recomputes")
        with self.stats.timeit("solve_s"):
            if link_members is None or link_classes is None:
                link_members = {}
                link_classes = {}
                for f in flows:
                    for link in routes[f.flow_id]:
                        members = link_members.get(link)
                        if members is None:
                            members = link_members[link] = set()
                            link_classes[link] = {}
                        members.add(f.flow_id)
                        counts = link_classes[link]
                        counts[f.sl] = counts.get(f.sl, 0) + 1
            qos = self.qos
            flow_ids = [f.flow_id for f in flows]
            weights = {f.flow_id: qos.flow_weight(f.sl) for f in flows}
            demands = {
                f.flow_id: f.rate_cap for f in flows if f.rate_cap is not None
            }
            if self.engine == "reference":
                constraints = [
                    Constraint(
                        capacity=self._capacity(link)
                        * qos.efficiency_for(len(link_classes[link])),
                        members=members,
                        name=f"{link[0]}->{link[1]}",
                    )
                    for link, members in link_members.items()
                ]
                rates = maxmin_rates(flow_ids, constraints, weights, demands or None)
            else:
                constraints = [
                    _LinkConstraint(
                        self._capacity(link)
                        * qos.efficiency_for(len(link_classes[link])),
                        members,
                        link,
                    )
                    for link, members in link_members.items()
                ]
                rates = maxmin_rates_vectorized(
                    flow_ids, constraints, weights, demands or None, perf=self.stats
                )
        if _sanitizer.enabled():
            # Max-min feasibility: the solver must never over-commit a link
            # beyond its effective (QoS-scaled) capacity.
            _sanitizer.check_feasible_allocation(constraints, rates, self._sim_now)
        # Record link loads for adaptive routing decisions.
        link_rates: Dict[LinkId, float] = {}
        for f in flows:
            r = rates[f.flow_id]
            if r == float("inf"):
                continue
            for link in routes[f.flow_id]:
                link_rates[link] = link_rates.get(link, 0.0) + r
        self._link_rates = link_rates
        sess = telemetry.session()
        if sess is not None:
            self._sample_link_utilization(sess, link_rates)
        return rates

    def _sample_link_utilization(
        self, sess: "telemetry.TelemetrySession", link_rates: Dict[LinkId, float]
    ) -> None:
        """One ``link_util`` gauge sample per loaded link at the sim clock.

        Runs on every rate recompute, but only while a telemetry session is
        active — the allocation hot path never pays for it otherwise.
        """
        registry = sess.registry
        ts = self._sim_now
        for link, rate in link_rates.items():
            cap = self._capacity(link)
            registry.gauge("link_util", link=f"{link[0]}->{link[1]}").set(
                rate / cap if cap > 0 else 0.0, ts=ts
            )

    # -- full fluid simulation -----------------------------------------------------

    def run(self, flows: Sequence[Flow]) -> List[FlowResult]:
        """Simulate all flows to completion; returns per-flow results."""
        with self.stats.timeit("run_s"):
            return self._run(flows)

    def _run(self, flows: Sequence[Flow]) -> List[FlowResult]:
        pending = sorted(flows, key=lambda f: (f.start, f.flow_id))
        audit = _sanitizer.FlowAudit() if _sanitizer.enabled() else None
        sess = telemetry.session()
        tracer = sess.tracer if sess is not None else None
        flow_spans: Dict[int, object] = {}
        routes: Dict[int, List[LinkId]] = {}
        remaining: Dict[int, float] = {}
        active: Dict[int, Flow] = {}  # insertion-ordered, O(1) removal
        # Incrementally-maintained per-link state (vectorized engine only;
        # the reference engine rebuilds per event, as the original did).
        link_members: Dict[LinkId, Set[int]] = {}
        link_classes: Dict[LinkId, Dict[ServiceLevel, int]] = {}
        results: Dict[int, FlowResult] = {}
        incremental = self.engine == "vectorized"
        now = 0.0
        i = 0

        # Flows between the same endpoint complete instantly (no fabric hop).
        def admit(f: Flow) -> None:
            self.stats.bump("admits")
            route = self._route(f)
            if not route:
                results[f.flow_id] = FlowResult(flow=f, start=f.start, finish=f.start)
                return
            routes[f.flow_id] = route
            remaining[f.flow_id] = f.size
            active[f.flow_id] = f
            if tracer is not None:
                # Flows overlap freely, so each is an async span on its
                # service-level track.
                flow_spans[f.flow_id] = tracer.begin(
                    f"{f.src}->{f.dst}",
                    max(now, f.start),
                    track=f"flows/{f.sl.name.lower()}",
                    cat="flows",
                    args={"bytes": f.size, "links": len(route)},
                    async_id=f.flow_id,
                )
            if incremental:
                for link in route:
                    members = link_members.get(link)
                    if members is None:
                        members = link_members[link] = set()
                        link_classes[link] = {}
                    members.add(f.flow_id)
                    counts = link_classes[link]
                    counts[f.sl] = counts.get(f.sl, 0) + 1

        def retire(f: Flow) -> None:
            fid = f.flow_id
            if audit is not None:
                # Byte conservation + non-negative duration at completion.
                audit.check_retire(f, f.start, now)
            if sess is not None:
                if tracer is not None:
                    tracer.end(flow_spans.pop(fid, None), now)
                sess.registry.histogram(
                    "flow_duration_s", sl=f.sl.name
                ).observe(now - f.start)
                sess.registry.counter(
                    "flows_completed_total", sl=f.sl.name
                ).inc()
            if incremental:
                for link in routes[fid]:
                    members = link_members[link]
                    members.discard(fid)
                    if not members:
                        del link_members[link]
                        del link_classes[link]
                    else:
                        counts = link_classes[link]
                        left = counts[f.sl] - 1
                        if left:
                            counts[f.sl] = left
                        else:
                            del counts[f.sl]
            del active[fid]
            del remaining[fid]

        while i < len(pending) or active:
            if not active:
                now = max(now, pending[i].start)
                while i < len(pending) and pending[i].start <= now:
                    admit(pending[i])
                    i += 1
                continue

            self.stats.bump("events")
            self._sim_now = now
            active_flows = list(active.values())
            if incremental:
                rates = self._solve(active_flows, routes, link_members, link_classes)
            else:
                rates = self.instantaneous_rates(active_flows, routes)
            # Earliest completion among active flows at current rates.
            t_complete = float("inf")
            for f in active_flows:
                r = rates[f.flow_id]
                if r > 0 and r != float("inf"):
                    t_complete = min(t_complete, remaining[f.flow_id] / r)
                elif r == float("inf"):
                    t_complete = 0.0
            t_arrival = pending[i].start - now if i < len(pending) else float("inf")
            dt = min(t_complete, t_arrival)
            if dt == float("inf"):
                raise TopologyError("simulation stalled: no progress possible")

            for f in active_flows:
                r = rates[f.flow_id]
                if r == float("inf"):
                    if audit is not None:
                        audit.note_progress(f.flow_id, remaining[f.flow_id])
                    remaining[f.flow_id] = 0.0
                else:
                    if audit is not None:
                        audit.note_progress(f.flow_id, r * dt)
                    remaining[f.flow_id] = max(remaining[f.flow_id] - r * dt, 0.0)
            now += dt

            # Batch every simultaneous completion into one retire pass, so
            # the next iteration runs a single recompute for all of them.
            finished = [
                f for f in active_flows
                if remaining[f.flow_id] <= f.size * COMPLETION_EPS
            ]
            for f in finished:
                results[f.flow_id] = FlowResult(flow=f, start=f.start, finish=now)
                retire(f)
            if finished:
                self.stats.bump("completions", len(finished))
                self.stats.bump("completion_batches")
            while i < len(pending) and pending[i].start <= now + 1e-12:
                admit(pending[i])
                i += 1

        if tracer is not None and pending:
            t0 = pending[0].start
            tracer.complete(
                "fluid_run", t0, max(now - t0, 0.0), track="flows",
                cat="flows", args={"flows": len(pending)},
            )
        ordered = sorted(flows, key=lambda f: f.flow_id)
        return [results[f.flow_id] for f in ordered]

    def aggregate_throughput(self, flows: Sequence[Flow]) -> BytesPerSec:
        """Total bytes moved / makespan for a flow set (convenience).

        An empty flow set moves no bytes: returns 0.0.
        """
        res = self.run(flows)
        if not res:
            return 0.0
        makespan = max(r.finish for r in res) - min(r.start for r in res)
        total = sum(r.flow.size for r in res)
        return total / makespan if makespan > 0 else float("inf")
