"""Fluid (flow-level) network simulation with max-min fair sharing.

Flows are modelled as fluid streams: at any instant, the rate of every
active flow is its weighted max-min fair share over the links of its route.
The simulator advances from event to event (flow arrival or completion),
recomputing shares whenever the active set changes — the standard fluid
abstraction for lossless credit-flow-controlled fabrics like InfiniBand.

QoS enters in two ways (see :mod:`repro.network.qos`): Virtual-Lane
isolation gives flows class weights, and disabling isolation applies a
head-of-line-blocking efficiency penalty on links carrying mixed classes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError
from repro.fairshare import Constraint, maxmin_rates
from repro.network.qos import ServiceLevel, TrafficClassConfig, default_qos
from repro.network.routing import Router, StaticRouter
from repro.network.topology import Fabric, LinkId

_ids = itertools.count()


@dataclass
class Flow:
    """One data transfer through the fabric."""

    src: str
    dst: str
    size: float  # bytes
    sl: ServiceLevel = ServiceLevel.OTHER
    start: float = 0.0
    rate_cap: Optional[float] = None  # source NIC / application limit
    flow_id: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise TopologyError(f"flow size must be positive, got {self.size}")
        if self.start < 0:
            raise TopologyError("flow start must be >= 0")


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow."""

    flow: Flow
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Seconds from start to completion."""
        return self.finish - self.start

    @property
    def mean_rate(self) -> float:
        """Average achieved bytes/s."""
        return self.flow.size / self.duration if self.duration > 0 else float("inf")


class FlowSim:
    """Event-driven fluid simulator over a :class:`Fabric`."""

    def __init__(
        self,
        fabric: Fabric,
        router: Optional[Router] = None,
        qos: Optional[TrafficClassConfig] = None,
    ) -> None:
        self.fabric = fabric
        self.qos = qos if qos is not None else default_qos()
        self._link_rates: Dict[LinkId, float] = {}
        self.router = router if router is not None else StaticRouter(fabric)
        # Give adaptive routers a live load view if they want one.
        if getattr(self.router, "_load_view", None) is not None:
            self.router._load_view = lambda: self._link_rates  # type: ignore[attr-defined]

    # -- instantaneous allocation ------------------------------------------------

    def instantaneous_rates(
        self, flows: Sequence[Flow], routes: Optional[Dict[int, List[LinkId]]] = None
    ) -> Dict[int, float]:
        """Max-min rates if all ``flows`` were active right now.

        Returns flow_id -> bytes/s. Useful for steady-state bandwidth
        studies (e.g. the allreduce sweeps) without running a full sim.
        """
        if not flows:
            return {}
        if routes is None:
            routes = {
                f.flow_id: self.router.route_links(f.src, f.dst, f.flow_id)
                for f in flows
            }
        # Classes present per link (for the HOL penalty).
        classes_on: Dict[LinkId, Set[ServiceLevel]] = {}
        for f in flows:
            for link in routes[f.flow_id]:
                classes_on.setdefault(link, set()).add(f.sl)

        members: Dict[LinkId, Set[int]] = {}
        for f in flows:
            for link in routes[f.flow_id]:
                members.setdefault(link, set()).add(f.flow_id)
        constraints = [
            Constraint(
                capacity=self.fabric.capacity(link)
                * self.qos.link_efficiency(classes_on[link]),
                members=mem,
                name=f"{link[0]}->{link[1]}",
            )
            for link, mem in members.items()
        ]
        weights = {f.flow_id: self.qos.flow_weight(f.sl) for f in flows}
        demands = {
            f.flow_id: f.rate_cap for f in flows if f.rate_cap is not None
        }
        rates = maxmin_rates(
            [f.flow_id for f in flows], constraints, weights, demands or None
        )
        # Record link loads for adaptive routing decisions.
        self._link_rates = {}
        for f in flows:
            r = rates[f.flow_id]
            if r == float("inf"):
                continue
            for link in routes[f.flow_id]:
                self._link_rates[link] = self._link_rates.get(link, 0.0) + r
        return rates

    # -- full fluid simulation -----------------------------------------------------

    def run(self, flows: Sequence[Flow]) -> List[FlowResult]:
        """Simulate all flows to completion; returns per-flow results."""
        pending = sorted(flows, key=lambda f: (f.start, f.flow_id))
        routes: Dict[int, List[LinkId]] = {}
        remaining: Dict[int, float] = {}
        active: List[Flow] = []
        results: Dict[int, FlowResult] = {}
        now = 0.0
        i = 0

        # Flows between the same endpoint complete instantly (no fabric hop).
        def admit(f: Flow) -> None:
            route = self.router.route_links(f.src, f.dst, f.flow_id)
            if not route:
                results[f.flow_id] = FlowResult(flow=f, start=f.start, finish=f.start)
                return
            routes[f.flow_id] = route
            remaining[f.flow_id] = f.size
            active.append(f)

        while i < len(pending) or active:
            if not active:
                now = max(now, pending[i].start)
                while i < len(pending) and pending[i].start <= now:
                    admit(pending[i])
                    i += 1
                continue

            rates = self.instantaneous_rates(active, routes)
            # Earliest completion among active flows at current rates.
            t_complete = float("inf")
            for f in active:
                r = rates[f.flow_id]
                if r > 0 and r != float("inf"):
                    t_complete = min(t_complete, remaining[f.flow_id] / r)
                elif r == float("inf"):
                    t_complete = 0.0
            t_arrival = pending[i].start - now if i < len(pending) else float("inf")
            dt = min(t_complete, t_arrival)
            if dt == float("inf"):
                raise TopologyError("simulation stalled: no progress possible")

            for f in active:
                r = rates[f.flow_id]
                if r == float("inf"):
                    remaining[f.flow_id] = 0.0
                else:
                    remaining[f.flow_id] = max(remaining[f.flow_id] - r * dt, 0.0)
            now += dt

            finished = [f for f in active if remaining[f.flow_id] <= 1e-6]
            for f in finished:
                results[f.flow_id] = FlowResult(flow=f, start=f.start, finish=now)
                active.remove(f)
                del remaining[f.flow_id]
            while i < len(pending) and pending[i].start <= now + 1e-12:
                admit(pending[i])
                i += 1

        ordered = sorted(flows, key=lambda f: f.flow_id)
        return [results[f.flow_id] for f in ordered]

    def aggregate_throughput(self, flows: Sequence[Flow]) -> float:
        """Total bytes moved / makespan for a flow set (convenience)."""
        res = self.run(flows)
        makespan = max(r.finish for r in res) - min(r.start for r in res)
        total = sum(r.flow.size for r in res)
        return total / makespan if makespan > 0 else float("inf")
