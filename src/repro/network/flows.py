"""Fluid (flow-level) network simulation with max-min fair sharing.

Flows are modelled as fluid streams: at any instant, the rate of every
active flow is its weighted max-min fair share over the links of its route.
The simulator advances from event to event (flow arrival or completion),
recomputing shares whenever the active set changes — the standard fluid
abstraction for lossless credit-flow-controlled fabrics like InfiniBand.

QoS enters in two ways (see :mod:`repro.network.qos`): Virtual-Lane
isolation gives flows class weights, and disabling isolation applies a
head-of-line-blocking efficiency penalty on links carrying mixed classes.

The engine is *incremental* and *vectorized* (see ``docs/PERFORMANCE.md``):
:meth:`FlowSim.run` keeps the flow×link incidence and the previous
allocation fixpoint inside a warm-started solver
(:class:`repro.fairshare.WarmMaxMin`) across events — admits and retires
mutate solver state in place and each event re-relaxes only the affected
connected component instead of rebuilding constraints from every active
flow. Per-flow progress, completion detection, and simultaneous-completion
batching run on NumPy arrays. Repeated
:meth:`FlowSim.instantaneous_rates` calls with an unchanged flow set are
memoized, and one-shot queries run on the NumPy incidence-matrix solver
(:func:`repro.fairshare.solve_cold`). ``engine="reference"`` selects the
original pure-Python per-event rebuild (the specification the vectorized
engine is property-tested against, and the baseline
``benchmarks/test_perf_flowsim.py`` measures speedups over).
:attr:`FlowSim.stats` exposes perf counters.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, namedtuple
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import telemetry
from repro.analysis import sanitizer as _sanitizer
from repro.errors import TopologyError
from repro.fairshare import Constraint, WarmMaxMin, maxmin_rates, solve_cold
from repro.network.qos import ServiceLevel, TrafficClassConfig, default_qos
from repro.units import Bytes, BytesPerSec, Seconds
from repro.network.routing import Router, StaticRouter
from repro.network.topology import Fabric, LinkId
from repro.perf import PerfCounters

_ids = itertools.count()

#: A flow counts as complete when its remaining bytes drop below this
#: fraction of its size. The tolerance is *relative* so that float rounding
#: in ``remaining -= rate * dt`` (which scales with flow size) terminates
#: multi-TB 3FS transfers, while tiny control flows are not declared done
#: while a meaningful fraction of their payload is still in flight — an
#: absolute cutoff cannot serve both ends of that range.
COMPLETION_EPS = 1e-9

#: instantaneous_rates memo entries kept (steady-state sweeps re-query a
#: handful of distinct flow sets).
_MEMO_SIZE = 16

#: Per-link capacity × HOL-efficiency constraint handed to the solver
#: (duck-typed stand-in for :class:`~repro.fairshare.Constraint` that skips
#: its defensive set copy on the per-event hot path).
_LinkConstraint = namedtuple("_LinkConstraint", ["capacity", "members", "name"])


@dataclass
class Flow:
    """One data transfer through the fabric."""

    src: str
    dst: str
    size: Bytes
    sl: ServiceLevel = ServiceLevel.OTHER
    start: Seconds = 0.0
    rate_cap: Optional[BytesPerSec] = None  # source NIC / application limit
    flow_id: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise TopologyError(f"flow size must be positive, got {self.size}")
        if self.start < 0:
            raise TopologyError("flow start must be >= 0")


@dataclass(frozen=True)
class LinkEvent:
    """One mid-run change to a fabric link, applied at simulated time.

    ``kind``:

    * ``"down"`` — the link goes dark; active flows crossing it are
      rerouted on the degraded fabric (or drained when no path remains),
      and subsequent admits route around it.
    * ``"up"`` — one matching ``"down"`` is undone (down events nest:
      a link is dark while any down outstanding). Flows keep their
      current paths; only future routing sees the restored link.
    * ``"degrade"`` — the link's capacity is scaled by
      ``capacity_factor`` (1.0 restores). No rerouting: the warm engine
      adjusts the live constraint row in place via
      :meth:`~repro.fairshare.WarmMaxMin.set_capacity`.

    Orientation is ignored: an event on ``(a, b)`` affects traffic in
    both directions of the physical link.
    """

    time: Seconds
    link: LinkId
    kind: str = "down"
    capacity_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("down", "up", "degrade"):
            raise TopologyError(f"unknown link event kind {self.kind!r}")
        if self.time < 0:
            raise TopologyError("link event time must be >= 0")
        if self.kind == "degrade" and not self.capacity_factor > 0:
            raise TopologyError("capacity_factor must be > 0")


def _canon(link: LinkId) -> LinkId:
    """Orientation-free link key (fluid links are directed per route)."""
    a, b = link
    return (a, b) if a <= b else (b, a)


class _LinkSchedule:
    """Down/degrade bookkeeping shared by both engines during one run.

    Tracks which physical links are currently dark (down events nest),
    rebuilds the simulator's router over a degraded fabric view whenever
    topology changes, and hands each engine the batch of events due at
    the current simulated time.
    """

    def __init__(self, sim: "FlowSim", events: Sequence[LinkEvent]) -> None:
        self.sim = sim
        for ev in events:
            if not sim.fabric.g.has_edge(*ev.link):
                raise TopologyError(f"no link {ev.link!r} to fail")
        self.events = sorted(events, key=lambda e: e.time)
        self.i = 0
        self.down: Dict[LinkId, int] = {}
        self.base_router = sim.router

    def next_time(self) -> float:
        if self.i < len(self.events):
            return self.events[self.i].time
        return float("inf")

    def due(self, now: float, eps: float = 1e-12) -> List[LinkEvent]:
        batch: List[LinkEvent] = []
        while self.i < len(self.events) and self.events[self.i].time <= now + eps:
            batch.append(self.events[self.i])
            self.i += 1
        return batch

    def apply(self, batch: Sequence[LinkEvent]) -> Tuple[bool, List[Tuple[LinkId, float]]]:
        """Fold a batch into the down set; returns (topology_changed,
        [(canonical_link, capacity_factor), ...] degrade updates)."""
        topo = False
        degraded: List[Tuple[LinkId, float]] = []
        for ev in batch:
            lk = _canon(ev.link)
            if ev.kind == "down":
                n = self.down.get(lk, 0) + 1
                self.down[lk] = n
                topo = topo or n == 1
            elif ev.kind == "up":
                n = self.down.get(lk, 0)
                if n <= 0:
                    raise TopologyError(f"link {lk!r} is not down")
                if n == 1:
                    del self.down[lk]
                    topo = True
                else:
                    self.down[lk] = n - 1
            else:  # degrade
                degraded.append((lk, ev.capacity_factor))
        if topo:
            self._rebuild_router()
        return topo, degraded

    def _rebuild_router(self) -> None:
        from repro.network.linkfail import DegradedFabric

        sim = self.sim
        if self.down:
            fab = DegradedFabric.from_fabric(sim.fabric, sorted(self.down))
        else:
            fab = sim.fabric
        router = type(self.base_router)(fab)
        router.set_load_view(lambda: sim._link_rates)
        sim.router = router
        sim._route_memo.clear()

    def crosses_down(self, route: Sequence[LinkId]) -> bool:
        down = self.down
        return any(_canon(link) in down for link in route)

    def restore(self) -> None:
        """Undo run-scoped router/cache state after the event loop."""
        sim = self.sim
        sim.router = self.base_router
        sim._route_memo.clear()
        sim._cap_cache.clear()
        sim._memo.clear()


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow."""

    flow: Flow
    start: Seconds
    finish: Seconds

    @property
    def duration(self) -> Seconds:
        """Seconds from start to completion."""
        return self.finish - self.start

    @property
    def mean_rate(self) -> BytesPerSec:
        """Average achieved bytes/s."""
        return self.flow.size / self.duration if self.duration > 0 else float("inf")


class FlowSim:
    """Event-driven fluid simulator over a :class:`Fabric`.

    ``engine`` selects the allocation path: ``"vectorized"`` (default) uses
    the NumPy solver with incremental link caches and memoization;
    ``"reference"`` reproduces the original pure-Python engine (per-event
    dict rebuilds, no memo) for equivalence testing and benchmarking.

    Link capacities are cached at first use, so the fabric should not be
    mutated while a simulator is attached to it (build a new :class:`FlowSim`
    for a degraded fabric, as :mod:`repro.network.linkfail` does).

    :attr:`stats` is a :class:`~repro.perf.PerfCounters` accumulating
    events, recomputes, memo/route-cache hits, and solver iterations across
    this instance's lifetime, plus per-phase wall time: ``run_s`` (whole
    event loop), ``solve_s`` (allocation solves), and ``invalidate_s``
    (admit/retire bookkeeping — the cache-invalidation phase). Event churn
    is the remainder ``run_s - solve_s - invalidate_s``.
    """

    def __init__(
        self,
        fabric: Fabric,
        router: Optional[Router] = None,
        qos: Optional[TrafficClassConfig] = None,
        engine: str = "vectorized",
        util_sample_interval: float = 0.0,
    ) -> None:
        if engine not in ("vectorized", "reference"):
            raise TopologyError(f"unknown flow engine {engine!r}")
        self.fabric = fabric
        self.qos = qos if qos is not None else default_qos()
        self.engine = engine
        self.stats = PerfCounters()
        self._sim_now = 0.0  # fluid-sim clock, read by telemetry samplers
        # Minimum sim-time between link_util gauge sweeps while a telemetry
        # session is active. 0.0 keeps the historical sample-every-recompute
        # behaviour; cluster-scale monitored runs set a coarser cadence so
        # per-event sampling cannot dominate the event loop.
        self.util_sample_interval = util_sample_interval
        self._last_util_sample = float("-inf")
        self._link_rates: Dict[LinkId, float] = {}
        self._cap_cache: Dict[LinkId, float] = {}
        self._route_memo: Dict[tuple, List[LinkId]] = {}
        # link_util gauge handles, rebuilt when the telemetry session
        # changes (registry lookups sort labels; a sweep touches every
        # loaded link, so per-sweep lookups would dominate sampling).
        self._util_gauges: Dict[LinkId, object] = {}
        self._util_gauge_sess: object = None
        self._memo: "OrderedDict[tuple, Tuple[Dict[int, float], Dict[LinkId, float]]]" = OrderedDict()
        self.router = router if router is not None else StaticRouter(fabric)
        # Give adaptive routers a live load view.
        self.router.set_load_view(lambda: self._link_rates)

    # -- cached lookups ----------------------------------------------------------

    def _capacity(self, link: LinkId) -> BytesPerSec:
        cap = self._cap_cache.get(link)
        if cap is None:
            cap = self._cap_cache[link] = self.fabric.capacity(link)
        return cap

    def _route(self, f: Flow) -> List[LinkId]:
        """Route a flow, caching on the router's memo key when routing is
        load-independent (adaptive choices must see fresh loads).

        The router owns the key: destination-based routing memoizes per
        (src, dst) so repeat traffic between the same endpoints never
        rebuilds the path; per-flow ECMP keeps flow_id in the key.
        """
        if self.router.load_dependent:
            return self.router.route_links(f.src, f.dst, f.flow_id)
        key = self.router.memo_key(f.src, f.dst, f.flow_id)
        route = self._route_memo.get(key)
        if route is None:
            route = self.router.route_links(f.src, f.dst, f.flow_id)
            if len(self._route_memo) >= 65536:
                self._route_memo.clear()
            self._route_memo[key] = route
        else:
            self.stats.bump("route_cache_hits")
        return route

    # -- instantaneous allocation ------------------------------------------------

    def instantaneous_rates(
        self, flows: Sequence[Flow], routes: Optional[Dict[int, List[LinkId]]] = None
    ) -> Dict[int, float]:
        """Max-min rates if all ``flows`` were active right now.

        Returns flow_id -> bytes/s. Useful for steady-state bandwidth
        studies (e.g. the allreduce sweeps) without running a full sim.
        Results for an unchanged flow set are memoized (vectorized engine,
        load-independent routers, default routing only).
        """
        if not flows:
            return {}
        self.stats.bump("rate_queries")
        if routes is None:
            self._sim_now = 0.0  # standalone steady-state query
        memo_ok = (
            routes is None
            and self.engine == "vectorized"
            and not self.router.load_dependent
        )
        key = None
        if memo_ok:
            key = tuple(
                sorted(
                    (f.flow_id, f.src, f.dst, f.sl.value,
                     -1.0 if f.rate_cap is None else f.rate_cap)
                    for f in flows
                )
            )
            hit = self._memo.get(key)
            if hit is not None:
                self._memo.move_to_end(key)
                self.stats.bump("memo_hits")
                rates, link_rates = hit
                self._link_rates = dict(link_rates)
                return dict(rates)
        if routes is None:
            routes = {f.flow_id: self._route(f) for f in flows}
        rates = self._solve(flows, routes)
        if memo_ok:
            self._memo[key] = (dict(rates), dict(self._link_rates))
            if len(self._memo) > _MEMO_SIZE:
                self._memo.popitem(last=False)
        return rates

    def _solve(
        self,
        flows: Sequence[Flow],
        routes: Dict[int, List[LinkId]],
        link_members: Optional[Dict[LinkId, Set[int]]] = None,
        link_classes: Optional[Dict[LinkId, Dict[ServiceLevel, int]]] = None,
    ) -> Dict[int, float]:
        """One allocation round. ``link_members``/``link_classes`` are the
        incrementally-maintained caches from :meth:`run`; when absent they
        are rebuilt from scratch (standalone queries, reference engine)."""
        self.stats.bump("rate_recomputes")
        with self.stats.timeit("solve_s"):
            if link_members is None or link_classes is None:
                link_members = {}
                link_classes = {}
                for f in flows:
                    for link in routes[f.flow_id]:
                        members = link_members.get(link)
                        if members is None:
                            members = link_members[link] = set()
                            link_classes[link] = {}
                        members.add(f.flow_id)
                        counts = link_classes[link]
                        counts[f.sl] = counts.get(f.sl, 0) + 1
            qos = self.qos
            flow_ids = [f.flow_id for f in flows]
            weights = {f.flow_id: qos.flow_weight(f.sl) for f in flows}
            demands = {
                f.flow_id: f.rate_cap for f in flows if f.rate_cap is not None
            }
            if self.engine == "reference":
                constraints = [
                    Constraint(
                        capacity=self._capacity(link)
                        * qos.efficiency_for(len(link_classes[link])),
                        members=members,
                        name=f"{link[0]}->{link[1]}",
                    )
                    for link, members in link_members.items()
                ]
                rates = maxmin_rates(flow_ids, constraints, weights, demands or None)
            else:
                constraints = [
                    _LinkConstraint(
                        self._capacity(link)
                        * qos.efficiency_for(len(link_classes[link])),
                        members,
                        link,
                    )
                    for link, members in link_members.items()
                ]
                rates = solve_cold(
                    flow_ids, constraints, weights, demands or None, perf=self.stats
                )
        if _sanitizer.enabled():
            # Max-min feasibility: the solver must never over-commit a link
            # beyond its effective (QoS-scaled) capacity.
            _sanitizer.check_feasible_allocation(constraints, rates, self._sim_now)
        # Record link loads for adaptive routing decisions.
        link_rates: Dict[LinkId, float] = {}
        for f in flows:
            r = rates[f.flow_id]
            if r == float("inf"):
                continue
            for link in routes[f.flow_id]:
                link_rates[link] = link_rates.get(link, 0.0) + r
        self._link_rates = link_rates
        sess = telemetry.session()
        if sess is not None:
            self._sample_link_utilization(sess, link_rates)
        return rates

    def _util_sample_due(self) -> bool:
        """Whether the next link_util sweep is due at the current sim clock.

        ``util_sample_interval=math.inf`` disables sweeps entirely (long-
        horizon drivers that synthesize their own coarse link_util feed).
        """
        return (
            self.util_sample_interval != float("inf")
            and self._sim_now - self._last_util_sample >= self.util_sample_interval
        )

    def _sample_link_utilization(
        self, sess: "telemetry.TelemetrySession", link_rates: Dict[LinkId, float]
    ) -> None:
        """One ``link_util`` gauge sample per loaded link at the sim clock.

        Runs on every rate recompute (throttled to ``util_sample_interval``
        of sim-time when set), but only while a telemetry session is
        active — the allocation hot path never pays for it otherwise.
        """
        if not self._util_sample_due():
            return
        self._last_util_sample = self._sim_now
        registry = sess.registry
        ts = self._sim_now
        if sess is not self._util_gauge_sess:
            self._util_gauge_sess = sess
            self._util_gauges = {}  # repro: noqa[PERF001] - session swap only
        gauges = self._util_gauges
        for link, rate in link_rates.items():
            gauge = gauges.get(link)
            if gauge is None:
                # One labelled-registry lookup per link *lifetime*.
                gauge = gauges[link] = registry.gauge(
                    "link_util", link=f"{link[0]}->{link[1]}"  # repro: noqa[PERF001]
                )
            cap = self._capacity(link)
            gauge.set(rate / cap if cap > 0 else 0.0, ts=ts)

    # -- full fluid simulation -----------------------------------------------------

    def run(
        self,
        flows: Sequence[Flow],
        link_events: Optional[Sequence[LinkEvent]] = None,
    ) -> List[FlowResult]:
        """Simulate all flows to completion; returns per-flow results.

        ``link_events`` injects mid-run fabric changes (see
        :class:`LinkEvent`): the event loop treats each event time as a
        boundary, reroutes or drains flows crossing downed links, and —
        in the warm engine — retunes live constraint rows in place via
        :meth:`~repro.fairshare.WarmMaxMin.set_capacity` instead of
        rebuilding the simulator on a degraded fabric. Both engines apply
        the identical policy, so warm-vs-reference equivalence holds
        under faults too. Router and capacity caches touched by the
        events are restored when the run returns.
        """
        schedule = _LinkSchedule(self, link_events) if link_events else None
        with self.stats.timeit("run_s"):
            try:
                if self.engine == "vectorized":
                    return self._run_warm(flows, schedule)
                return self._run_reference(flows, schedule)
            finally:
                if schedule is not None:
                    schedule.restore()

    def _degrade_caps(
        self, lk: LinkId, factor: float
    ) -> List[Tuple[LinkId, float]]:
        """Refresh the capacity cache for both orientations of a degraded
        link; returns the (orientation, new_capacity) pairs written."""
        base = self.fabric.capacity(lk) * factor
        updates = []  # repro: noqa[PERF001] - per link event (rare), not per flow event
        for o in (lk, (lk[1], lk[0])):
            self._cap_cache[o] = base
            updates.append((o, base))
        return updates

    def _run_reference(
        self,
        flows: Sequence[Flow],
        schedule: Optional[_LinkSchedule] = None,
    ) -> List[FlowResult]:
        """Original pure-Python event loop: dict state, cold solve per event."""
        pending = sorted(flows, key=lambda f: (f.start, f.flow_id))
        audit = _sanitizer.FlowAudit() if _sanitizer.enabled() else None
        sess = telemetry.session()
        tracer = sess.tracer if sess is not None else None
        flow_spans: Dict[int, object] = {}
        # Registry lookups sort labels per call; one retire per flow makes
        # that the dominant telemetry cost, so handles are cached per SL.
        dur_hist: Dict[str, object] = {}
        done_ctr: Dict[str, object] = {}
        routes: Dict[int, List[LinkId]] = {}
        remaining: Dict[int, float] = {}
        active: Dict[int, Flow] = {}  # insertion-ordered, O(1) removal
        results: Dict[int, FlowResult] = {}
        now = 0.0
        i = 0

        # Flows between the same endpoint complete instantly (no fabric hop).
        def admit(f: Flow, remaining_override: Optional[float] = None) -> None:
            self.stats.bump("admits")
            try:
                route = self._route(f)
            except TopologyError:
                if schedule is None:
                    raise
                # No path on the degraded fabric: the flow drains — the
                # paper's single-NIC task kill.
                self.stats.bump("drains")
                results[f.flow_id] = FlowResult(
                    flow=f, start=f.start, finish=max(now, f.start)
                )
                return
            if not route:
                results[f.flow_id] = FlowResult(flow=f, start=f.start, finish=f.start)
                return
            routes[f.flow_id] = route
            remaining[f.flow_id] = (
                f.size if remaining_override is None else remaining_override
            )
            active[f.flow_id] = f
            if tracer is not None:
                # Flows overlap freely, so each is an async span on its
                # service-level track.
                flow_spans[f.flow_id] = tracer.begin(
                    f"{f.src}->{f.dst}",
                    max(now, f.start),
                    track=f"flows/{f.sl.name.lower()}",
                    cat="flows",
                    args={"bytes": f.size, "links": len(route)},
                    async_id=f.flow_id,
                )

        def retire(f: Flow, completed: bool = True) -> None:
            fid = f.flow_id
            if completed and audit is not None:
                # Byte conservation + non-negative duration at completion.
                audit.check_retire(f, f.start, now)
            if sess is not None:
                if tracer is not None:
                    tracer.end(flow_spans.pop(fid, None), now)
                if completed:
                    sl = f.sl.name
                    hist = dur_hist.get(sl)
                    if hist is None:
                        hist = dur_hist[sl] = sess.registry.histogram(
                            "flow_duration_s", sl=sl
                        )
                        done_ctr[sl] = sess.registry.counter(
                            "flows_completed_total", sl=sl
                        )
                    hist.observe(now - f.start, ts=now)
                    done_ctr[sl].inc()
            del active[fid]
            del remaining[fid]

        def apply_link_events() -> None:
            batch = schedule.due(now)
            if not batch:
                return
            self.stats.bump("link_events", len(batch))
            topo, degraded = schedule.apply(batch)
            for lk, factor in degraded:
                self._degrade_caps(lk, factor)
            if topo and active:
                hit = [
                    f for f in active.values()
                    if schedule.crosses_down(routes[f.flow_id])
                ]
                for f in hit:
                    rem = remaining[f.flow_id]
                    retire(f, completed=False)
                    self.stats.bump("reroutes")
                    admit(f, remaining_override=rem)

        while i < len(pending) or active:
            if not active:
                t_next = pending[i].start
                t_ev = (
                    schedule.next_time() if schedule is not None else float("inf")
                )
                if t_ev < t_next:
                    # Nothing flowing: just fold the fabric change in.
                    now = max(now, t_ev)
                    apply_link_events()
                    continue
                now = max(now, t_next)
                with self.stats.timeit("invalidate_s"):
                    while i < len(pending) and pending[i].start <= now:
                        admit(pending[i])
                        i += 1
                continue

            self.stats.bump("events")
            self._sim_now = now
            active_flows = list(active.values())
            rates = self.instantaneous_rates(active_flows, routes)
            # Earliest completion among active flows at current rates.
            t_complete = float("inf")
            for f in active_flows:
                r = rates[f.flow_id]
                if r > 0 and r != float("inf"):
                    t_complete = min(t_complete, remaining[f.flow_id] / r)
                elif r == float("inf"):
                    t_complete = 0.0
            t_arrival = pending[i].start - now if i < len(pending) else float("inf")
            t_event = (
                schedule.next_time() - now if schedule is not None else float("inf")
            )
            dt = min(t_complete, t_arrival, t_event)
            if dt == float("inf"):
                raise TopologyError("simulation stalled: no progress possible")

            for f in active_flows:
                r = rates[f.flow_id]
                if r == float("inf"):
                    if audit is not None:
                        audit.note_progress(f.flow_id, remaining[f.flow_id])
                    remaining[f.flow_id] = 0.0
                else:
                    if audit is not None:
                        audit.note_progress(f.flow_id, r * dt)
                    remaining[f.flow_id] = max(remaining[f.flow_id] - r * dt, 0.0)
            now += dt

            # Batch every simultaneous completion into one retire pass, so
            # the next iteration runs a single recompute for all of them.
            finished = [
                f for f in active_flows
                if remaining[f.flow_id] <= f.size * COMPLETION_EPS
            ]
            if finished:
                with self.stats.timeit("invalidate_s"):
                    for f in finished:
                        results[f.flow_id] = FlowResult(
                            flow=f, start=f.start, finish=now
                        )
                        retire(f)
                self.stats.bump("completions", len(finished))
                self.stats.bump("completion_batches")
            if i < len(pending) and pending[i].start <= now + 1e-12:
                with self.stats.timeit("invalidate_s"):
                    while i < len(pending) and pending[i].start <= now + 1e-12:
                        admit(pending[i])
                        i += 1
            if schedule is not None and schedule.next_time() <= now + 1e-12:
                with self.stats.timeit("invalidate_s"):
                    apply_link_events()

        if tracer is not None and pending:
            t0 = pending[0].start
            tracer.complete(
                "fluid_run", t0, max(now - t0, 0.0), track="flows",
                cat="flows", args={"flows": len(pending)},
            )
        ordered = sorted(flows, key=lambda f: f.flow_id)
        return [results[f.flow_id] for f in ordered]

    def _run_warm(
        self,
        flows: Sequence[Flow],
        schedule: Optional[_LinkSchedule] = None,
    ) -> List[FlowResult]:
        """Warm-started event loop: solver state persists across events.

        Flows become integer slots in a :class:`WarmMaxMin`; links become
        constraint rows allocated on first use. Admits append incidence
        entries, retires mark them garbage, and each event re-relaxes only
        the dirty connected component. Progress/completion bookkeeping is
        NumPy over slot arrays instead of per-flow dict updates.

        QoS class accounting (the HOL efficiency factor) only exists when
        isolation is off: per-row class counts live in one integer matrix
        and a row's capacity is touched only when its distinct-class count
        crosses the 1↔2 boundary.
        """
        pending = sorted(flows, key=lambda f: (f.start, f.flow_id))
        audit = _sanitizer.FlowAudit() if _sanitizer.enabled() else None
        sess = telemetry.session()
        tracer = sess.tracer if sess is not None else None
        flow_spans: Dict[int, object] = {}
        # Same per-SL handle cache as the reference loop: one registry
        # lookup per service level instead of two per retired flow.
        dur_hist: Dict[str, object] = {}
        done_ctr: Dict[str, object] = {}
        results: Dict[int, FlowResult] = {}

        warm = WarmMaxMin()
        qos = self.qos
        track_classes = not qos.isolation
        hol_eff = 1.0 - qos.hol_penalty
        sl_col = {sl: k for k, sl in enumerate(ServiceLevel)}

        # Hot-loop handles (PERF003): attribute chains and len() are
        # resolved once here instead of on every event; span timers are
        # plain reusable context managers, not per-event generators.
        stats = self.stats
        bump = stats.bump
        span_solve = stats.span("solve_s")
        span_invalidate = stats.span("invalidate_s")
        n_pending = len(pending)

        link_row: Dict[LinkId, int] = {}
        row_link: Dict[int, LinkId] = {}
        base_cap = np.zeros(64, dtype=np.float64)  # indexed by row id
        class_cnt = np.zeros((64, len(sl_col)), dtype=np.int64)
        n_class = np.zeros(64, dtype=np.int64)

        # Slot-indexed flow state (grown in lockstep with warm's slots).
        flow_by_slot: List[Flow] = []
        route_by_slot: List[List[LinkId]] = []
        rows_by_slot: List[np.ndarray] = []
        size_arr = np.zeros(64, dtype=np.float64)
        rem_arr = np.zeros(64, dtype=np.float64)
        act = np.zeros(64, dtype=bool)
        n_active = 0
        # Only maintained when the sanitizer needs feasibility inputs.
        link_members: Optional[Dict[LinkId, Set[int]]] = (
            {} if audit is not None else None
        )
        # Adaptive routing needs per-link loads every event; telemetry
        # needs them only when a link_util sweep is due (every event by
        # default, throttled by util_sample_interval). Nobody else pays.
        always_link_rates = self.router.load_dependent

        def grow_rows(need: int) -> None:
            nonlocal base_cap, class_cnt, n_class
            if need <= base_cap.shape[0]:
                return
            cap = max(need, 2 * base_cap.shape[0])
            base_cap = np.concatenate(  # repro: noqa[PERF002] - amortized doubling, O(log n) growths total
                [base_cap, np.zeros(cap - base_cap.shape[0], dtype=np.float64)]  # repro: noqa[PERF001] - amortized doubling
            )
            class_cnt = np.concatenate(  # repro: noqa[PERF002] - amortized doubling, O(log n) growths total
                [class_cnt,  # repro: noqa[PERF001] - amortized doubling
                 np.zeros((cap - class_cnt.shape[0], len(sl_col)), dtype=np.int64)]
            )
            n_class = np.concatenate(  # repro: noqa[PERF002] - amortized doubling, O(log n) growths total
                [n_class, np.zeros(cap - n_class.shape[0], dtype=np.int64)]  # repro: noqa[PERF001] - amortized doubling
            )

        def grow_slots(need: int) -> None:
            nonlocal size_arr, rem_arr, act
            if need <= size_arr.shape[0]:
                return
            cap = max(need, 2 * size_arr.shape[0])
            size_arr = np.concatenate(  # repro: noqa[PERF002] - amortized doubling, O(log n) growths total
                [size_arr, np.zeros(cap - size_arr.shape[0], dtype=np.float64)]  # repro: noqa[PERF001] - amortized doubling
            )
            rem_arr = np.concatenate(  # repro: noqa[PERF002] - amortized doubling, O(log n) growths total
                [rem_arr, np.zeros(cap - rem_arr.shape[0], dtype=np.float64)]  # repro: noqa[PERF001] - amortized doubling
            )
            act = np.concatenate(  # repro: noqa[PERF002] - amortized doubling, O(log n) growths total
                [act, np.zeros(cap - act.shape[0], dtype=bool)]  # repro: noqa[PERF001] - amortized doubling
            )

        def admit(f: Flow, now: float, remaining: Optional[float] = None) -> None:
            nonlocal n_active
            bump("admits")
            try:
                route = self._route(f)
            except TopologyError:
                if schedule is None:
                    raise
                # No path on the degraded fabric: the flow drains — the
                # paper's single-NIC task kill.
                bump("drains")
                results[f.flow_id] = FlowResult(
                    flow=f, start=f.start, finish=max(now, f.start)
                )
                return
            if not route:
                # Same-endpoint flows complete instantly (no fabric hop).
                results[f.flow_id] = FlowResult(flow=f, start=f.start, finish=f.start)
                return
            rows = np.empty(len(route), dtype=np.intp)
            for j, link in enumerate(route):
                row = link_row.get(link)
                if row is None:
                    row = warm.new_constraint(self._capacity(link))
                    link_row[link] = row
                    row_link[row] = link
                    grow_rows(row + 1)
                    base_cap[row] = warm.capacity_of(row)
                rows[j] = row
            if track_classes:
                col = sl_col[f.sl]
                first = class_cnt[rows, col] == 0
                class_cnt[rows, col] += 1
                if first.any():
                    bumped = rows[first]
                    n_class[bumped] += 1
                    for row in bumped[n_class[bumped] == 2]:
                        # Second distinct class on the row: HOL penalty on.
                        warm.set_capacity(int(row), base_cap[row] * hol_eff)
            slot = warm.admit(rows, qos.flow_weight(f.sl), demand=f.rate_cap)
            grow_slots(slot + 1)
            flow_by_slot.append(f)
            route_by_slot.append(route)
            rows_by_slot.append(rows)
            size_arr[slot] = f.size
            # Rerouted continuations resume with their surviving bytes;
            # size_arr keeps f.size so the COMPLETION_EPS base is stable.
            rem_arr[slot] = f.size if remaining is None else remaining
            act[slot] = True
            n_active += 1
            if link_members is not None:
                for link in route:
                    link_members.setdefault(link, set()).add(f.flow_id)
            if tracer is not None:
                flow_spans[f.flow_id] = tracer.begin(
                    f"{f.src}->{f.dst}", # repro: noqa[PERF001] - tracer-gated; off in benchmarks
                    max(now, f.start),
                    track=f"flows/{f.sl.name.lower()}", # repro: noqa[PERF001] - tracer-gated; off in benchmarks
                    cat="flows",
                    args={"bytes": f.size, "links": len(route)}, # repro: noqa[PERF001] - tracer-gated; off in benchmarks
                    async_id=f.flow_id,
                )

        def retire(slot: int, now: float, completed: bool = True) -> None:
            nonlocal n_active
            f = flow_by_slot[slot]
            fid = f.flow_id
            if completed and audit is not None:
                audit.check_retire(f, f.start, now)
            if sess is not None:
                if tracer is not None:
                    tracer.end(flow_spans.pop(fid, None), now)
                if completed:
                    sl = f.sl.name
                    hist = dur_hist.get(sl)
                    if hist is None:
                        hist = dur_hist[sl] = sess.registry.histogram(
                            "flow_duration_s", sl=sl
                        )
                        done_ctr[sl] = sess.registry.counter(
                            "flows_completed_total", sl=sl
                        )
                    hist.observe(now - f.start, ts=now)
                    done_ctr[sl].inc()
            if track_classes:
                rows = rows_by_slot[slot]
                col = sl_col[f.sl]
                class_cnt[rows, col] -= 1
                emptied = rows[class_cnt[rows, col] == 0]
                if emptied.shape[0]:
                    n_class[emptied] -= 1
                    for row in emptied[n_class[emptied] == 1]:
                        # Back to a single class: full capacity restored.
                        warm.set_capacity(int(row), float(base_cap[row]))
            if link_members is not None:
                for link in route_by_slot[slot]:
                    members = link_members[link]
                    members.discard(fid)
                    if not members:
                        del link_members[link]
            warm.retire(slot)
            act[slot] = False
            n_active -= 1

        def apply_link_events(now: float) -> None:
            batch = schedule.due(now)
            if not batch:
                return
            bump("link_events", len(batch))
            topo, degraded = schedule.apply(batch)
            for lk, factor in degraded:
                # The warm engine's in-place path: the live constraint row
                # is retuned without tearing down solver state.
                for o, cap in self._degrade_caps(lk, factor):
                    row = link_row.get(o)
                    if row is not None:
                        base_cap[row] = cap
                        eff = hol_eff if track_classes and n_class[row] >= 2 else 1.0
                        warm.set_capacity(row, cap * eff)
            if topo and n_active:
                hit = [  # repro: noqa[PERF001] - per topology change (rare), not per flow event
                    int(s) for s in np.flatnonzero(act[: warm.n_flows])
                    if schedule.crosses_down(route_by_slot[int(s)])
                ]
                for slot in hit:
                    f = flow_by_slot[slot]
                    rem = float(rem_arr[slot])
                    retire(slot, now, completed=False)
                    bump("reroutes")
                    admit(f, now, remaining=rem)

        now = 0.0
        i = 0
        while i < n_pending or n_active:
            if not n_active:
                t_next = pending[i].start
                t_ev = (
                    schedule.next_time() if schedule is not None else float("inf")
                )
                if t_ev < t_next:
                    # Nothing flowing: just fold the fabric change in.
                    now = max(now, t_ev)
                    apply_link_events(now)
                    continue
                now = max(now, t_next)
                with span_invalidate:
                    while i < n_pending and pending[i].start <= now:
                        admit(pending[i], now)
                        i += 1
                continue

            bump("events")
            bump("rate_recomputes")
            self._sim_now = now
            with span_solve:
                rates_all = warm.solve(perf=stats)
            slots = np.flatnonzero(act[: warm.n_flows])
            r = rates_all[slots]
            rem = rem_arr[slots]

            inf_mask = np.isinf(r)
            if inf_mask.any():
                t_complete = 0.0
            else:
                # Zero rates (a fully-consumed bottleneck) cannot complete;
                # they wait for an arrival or another completion.
                pos = r > 0.0
                if pos.all():
                    t_complete = float(np.min(rem / r))
                elif pos.any():
                    t_complete = float(np.min(rem[pos] / r[pos]))
                else:
                    t_complete = float("inf")
            t_arrival = pending[i].start - now if i < n_pending else float("inf")
            t_event = (
                schedule.next_time() - now if schedule is not None else float("inf")
            )
            dt = min(t_complete, t_arrival, t_event)
            if dt == float("inf"):
                raise TopologyError("simulation stalled: no progress possible")

            moved = np.where(inf_mask, rem, r * dt)
            if audit is not None:
                for s, nbytes in zip(slots, moved):
                    audit.note_progress(flow_by_slot[int(s)].flow_id, float(nbytes))
            new_rem = np.maximum(rem - moved, 0.0)
            rem_arr[slots] = new_rem
            now += dt

            if audit is not None or always_link_rates or (
                sess is not None and self._util_sample_due()
            ):
                self._publish_warm_link_rates(
                    sess, slots, rates_all, flow_by_slot, route_by_slot,
                    link_members, link_row, warm,
                )

            # Batch every simultaneous completion into one retire pass, so
            # the next iteration runs a single recompute for all of them.
            fin = slots[new_rem <= size_arr[slots] * COMPLETION_EPS]
            if fin.shape[0]:
                with span_invalidate:
                    for s in fin:
                        slot = int(s)
                        f = flow_by_slot[slot]
                        results[f.flow_id] = FlowResult(
                            flow=f, start=f.start, finish=now
                        )
                        retire(slot, now)
                bump("completions", int(fin.shape[0]))
                bump("completion_batches")
            if i < n_pending and pending[i].start <= now + 1e-12:
                with span_invalidate:
                    while i < n_pending and pending[i].start <= now + 1e-12:
                        admit(pending[i], now)
                        i += 1
            if schedule is not None and schedule.next_time() <= now + 1e-12:
                with span_invalidate:
                    apply_link_events(now)

        if tracer is not None and pending:
            t0 = pending[0].start
            tracer.complete(
                "fluid_run", t0, max(now - t0, 0.0), track="flows",
                cat="flows", args={"flows": len(pending)},
            )
        ordered = sorted(flows, key=lambda f: f.flow_id)
        return [results[f.flow_id] for f in ordered]

    def _publish_warm_link_rates(
        self,
        sess: Optional["telemetry.TelemetrySession"],
        slots: np.ndarray,
        rates_all: np.ndarray,
        flow_by_slot: List[Flow],
        route_by_slot: List[List[LinkId]],
        link_members: Optional[Dict[LinkId, Set[int]]],
        link_row: Dict[LinkId, int],
        warm: WarmMaxMin,
    ) -> None:
        """Slow-path per-event link loads for the warm engine.

        Only called when an adaptive router, a telemetry session, or the
        sanitizer needs them — the plain hot path never builds the dict.
        """
        link_rates: Dict[LinkId, float] = {}  # repro: noqa[PERF001] - gated slow path (adaptive/telemetry/sanitizer only)
        rates_by_id: Dict[int, float] = {}  # repro: noqa[PERF001] - gated slow path (adaptive/telemetry/sanitizer only)
        for s in slots:
            slot = int(s)
            rate = float(rates_all[slot])
            rates_by_id[flow_by_slot[slot].flow_id] = rate
            if rate == float("inf"):
                continue
            for link in route_by_slot[slot]:
                link_rates[link] = link_rates.get(link, 0.0) + rate
        self._link_rates = link_rates
        if link_members is not None:
            constraints = [  # repro: noqa[PERF001] - sanitizer-gated (REPRO_SANITIZE=1 runs only)
                _LinkConstraint(warm.capacity_of(link_row[link]), members, link)
                for link, members in link_members.items()
            ]
            _sanitizer.check_feasible_allocation(
                constraints, rates_by_id, self._sim_now
            )
        if sess is not None:
            self._sample_link_utilization(sess, link_rates)

    def aggregate_throughput(self, flows: Sequence[Flow]) -> BytesPerSec:
        """Total bytes moved / makespan for a flow set (convenience).

        An empty flow set moves no bytes: returns 0.0.
        """
        res = self.run(flows)
        if not res:
            return 0.0
        makespan = max(r.finish for r in res) - min(r.start for r in res)
        total = sum(r.flow.size for r in res)
        return total / makespan if makespan > 0 else float("inf")
