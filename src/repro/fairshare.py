"""Weighted max-min fair allocation by progressive filling.

This is the core bandwidth-sharing primitive used by both the in-node PCIe
contention model and the fabric-level flow simulator. Lossless, credit-based
InfiniBand fabrics approximate per-flow max-min fairness, so progressive
filling is the standard fluid abstraction for them.

Each *flow* has a weight (QoS share); each *constraint* has a capacity and a
set of member flows. The solver repeatedly saturates the tightest
constraint, freezing its members' rates, until all flows are fixed.

Two implementations share these semantics:

* :func:`maxmin_rates` — the pure-Python reference (dicts and sets), kept
  as the readable specification and property-test oracle;
* :func:`maxmin_rates_vectorized` — a NumPy engine over a flow×constraint
  incidence matrix in CSR-style index arrays, used by the flow simulator's
  hot path. Weight sums, bottleneck selection, and capacity charging are
  all array reductions, so per-iteration cost is a handful of O(nnz)
  vector ops instead of Python-level set algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.perf import PerfCounters

FlowId = Hashable


@dataclass
class Constraint:
    """A shared capacity over a set of flows (a link, port, or bus)."""

    capacity: float
    members: Set[FlowId]
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"constraint {self.name!r} capacity must be > 0")
        self.members = set(self.members)


def maxmin_rates(
    flows: Sequence[FlowId],
    constraints: Sequence[Constraint],
    weights: Optional[Mapping[FlowId, float]] = None,
    demands: Optional[Mapping[FlowId, float]] = None,
) -> Dict[FlowId, float]:
    """Compute weighted max-min fair rates.

    Parameters
    ----------
    flows:
        All flows to allocate. Flows not covered by any constraint (and
        without a demand cap) receive ``inf``.
    constraints:
        Shared capacities. A flow may appear in any number of constraints.
    weights:
        Relative shares; missing entries default to 1.0.
    demands:
        Optional per-flow rate caps (e.g. source application limits),
        modelled as single-flow constraints.

    Returns
    -------
    dict
        Flow id -> allocated rate. Sum of rates through any constraint never
        exceeds its capacity (up to float tolerance).
    """
    w = {f: (weights.get(f, 1.0) if weights else 1.0) for f in flows}
    for f, wt in w.items():
        if wt <= 0:
            raise ValueError(f"flow {f!r} weight must be > 0")

    cons: List[Constraint] = [
        Constraint(capacity=c.capacity, members=set(c.members) & set(flows), name=c.name)
        for c in constraints
    ]
    if demands:
        for f, d in demands.items():
            if f in w:
                cons.append(Constraint(capacity=max(d, 1e-30), members={f}, name=f"demand:{f}"))

    remaining = {c_i: c.capacity for c_i, c in enumerate(cons)}
    active: Set[FlowId] = set(flows)
    rates: Dict[FlowId, float] = {}

    while active:
        # Find the bottleneck: smallest fair-share increment over constraints
        # that still have active members.
        best_ratio = None
        best_idx = None
        for idx, c in enumerate(cons):
            members = c.members & active
            if not members:
                continue
            weight_sum = sum(w[f] for f in members)
            ratio = remaining[idx] / weight_sum
            if best_ratio is None or ratio < best_ratio:
                best_ratio = ratio
                best_idx = idx
        if best_idx is None:
            # Unconstrained flows: infinite rate (caller caps via demands).
            for f in active:
                rates[f] = float("inf")
            break

        bottleneck = cons[best_idx]
        fixed = bottleneck.members & active
        for f in fixed:
            rates[f] = w[f] * best_ratio
        # Charge the fixed flows against every constraint they traverse.
        for idx, c in enumerate(cons):
            used = sum(rates[f] for f in (c.members & fixed))
            remaining[idx] = max(remaining[idx] - used, 0.0)
        active -= fixed

    return rates


def maxmin_rates_vectorized(
    flows: Sequence[FlowId],
    constraints: Sequence[Constraint],
    weights: Optional[Mapping[FlowId, float]] = None,
    demands: Optional[Mapping[FlowId, float]] = None,
    perf: Optional[PerfCounters] = None,
) -> Dict[FlowId, float]:
    """NumPy progressive filling; same contract as :func:`maxmin_rates`.

    The flow×constraint incidence matrix is held as two parallel index
    arrays (one entry per membership), sorted by constraint so each
    constraint's members are a contiguous slice (CSR). Each filling round
    does vectorized weight sums per constraint (``bincount``), an
    ``argmin`` bottleneck pick (first-index tie-break, matching the
    reference), and a vectorized capacity charge.

    ``perf``, if given, accumulates ``solver_iterations`` and
    ``solver_calls``. Results match :func:`maxmin_rates` to float rounding
    (≤1e-9 relative; the two sum member weights in different orders).
    """
    flow_list = list(flows)
    index: Dict[FlowId, int] = {}
    for f in flow_list:
        if f not in index:
            index[f] = len(index)
    n = len(index)
    if n == 0:
        return {}

    w = np.ones(n, dtype=np.float64)
    if weights:
        for f, i in index.items():
            w[i] = weights.get(f, 1.0)
    if np.any(w <= 0):
        bad = next(f for f, i in index.items() if w[i] <= 0)
        raise ValueError(f"flow {bad!r} weight must be > 0")

    # Incidence entries: (constraint row, flow column), constraints with no
    # member in this allocation round are dropped (they can never bind).
    ent_cons: List[int] = []
    ent_flow: List[int] = []
    caps: List[float] = []
    for c in constraints:
        members = [index[f] for f in c.members if f in index]
        if not members:
            continue
        row = len(caps)
        caps.append(c.capacity)
        ent_cons.extend([row] * len(members))
        ent_flow.extend(members)
    if demands:
        for f, d in demands.items():
            if f in index:
                row = len(caps)
                caps.append(max(d, 1e-30))
                ent_cons.append(row)
                ent_flow.append(index[f])

    rates = np.zeros(n, dtype=np.float64)
    active = np.ones(n, dtype=bool)
    m = len(caps)
    iterations = 0
    if m == 0:
        rates[:] = np.inf
        active[:] = False

    if m:
        ec = np.asarray(ent_cons, dtype=np.intp)
        ef = np.asarray(ent_flow, dtype=np.intp)
        # CSR: entries are appended in row order already, so each row is a
        # contiguous [indptr[r], indptr[r+1]) slice.
        indptr = np.searchsorted(ec, np.arange(m + 1))
        ew = w[ef]
        remaining = np.asarray(caps, dtype=np.float64)

        while active.any():
            iterations += 1
            act_ent = active[ef]
            weight_sum = np.bincount(ec[act_ent], weights=ew[act_ent], minlength=m)
            binding = weight_sum > 0
            if not binding.any():
                # Only unconstrained flows remain: infinite rate (caller
                # caps via demands).
                rates[active] = np.inf
                break
            ratio = np.full(m, np.inf)
            np.divide(remaining, weight_sum, out=ratio, where=binding)
            b = int(np.argmin(ratio))
            seg = slice(indptr[b], indptr[b + 1])
            fix = ef[seg][active[ef[seg]]]
            rates[fix] = w[fix] * ratio[b]
            active[fix] = False
            # Charge the fixed flows against every constraint they traverse.
            fixed_mask = np.zeros(n, dtype=bool)
            fixed_mask[fix] = True
            charged = fixed_mask[ef]
            used = np.bincount(ec[charged], weights=rates[ef[charged]], minlength=m)
            np.maximum(remaining - used, 0.0, out=remaining)

    if perf is not None:
        perf.bump("solver_calls")
        perf.bump("solver_iterations", iterations)
    return {
        f: (float("inf") if np.isinf(rates[i]) else float(rates[i]))
        for f, i in index.items()
    }


def bottleneck_throughput(
    flows: Sequence[FlowId],
    constraints: Sequence[Constraint],
    weights: Optional[Mapping[FlowId, float]] = None,
) -> float:
    """Aggregate throughput of a max-min allocation (convenience helper)."""
    rates = maxmin_rates(flows, constraints, weights)
    return sum(r for r in rates.values() if r != float("inf"))
