"""Anomaly detectors and their ``@detector`` registry.

A detector is a small stateful stream processor: the
:class:`~repro.monitor.engine.Monitor` routes metric samples (by metric
name), spans and instants (by track prefix), and periodic time ticks to
the hooks each detector declares, and the detector raises/resolves
alerts through the monitor. All state is keyed on simulated time — no
wall clock — so detection is replay-deterministic.

Each detector declares ``kinds``: the :class:`~repro.faults.FaultPlan`
event kinds whose *symptoms* it watches for, used by
:mod:`repro.monitor.scoring` to line alerts up with injected ground
truth, and ``match_window_s``: how long after injection a detection
still counts (the physical lag between a fault and its symptom —
congestion persists while traffic drains back, queue waits build over
hours as a drained node's capacity is missed).

Built-in detectors (the paper's Section-VII checklist):

* ``link_congestion`` — sustained ``link_util`` above threshold
  (hotspots from reroutes around flapped links / dead NICs).
* ``collective_straggler`` — an HFReduce rank whose stage duration is an
  outlier vs its peers in the same round (hung host).
* ``xid_ecc_burst`` — repeated Xid/ECC events on one node inside a
  window, classified through :mod:`repro.reliability.xid` into the
  Table-V operator action.
* ``queue_wait_slo`` — scheduler queue waits breach the SLO (capacity
  lost to failed/drained nodes).
* ``storage_latency`` — 3FS request latency regresses vs its own
  rolling baseline (storage-node loss forcing retries/rechains).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Tuple, Type

from repro.errors import ReproError
from repro.monitor.windows import QuantileSketch, RollingWindow, TimeWindow
from repro.reliability.xid import Action, classify_xid
from repro.telemetry.core import InstantEvent, Span
from repro.telemetry.metrics import Metric
from repro.units import MINUTE, Count, Scalar, Seconds, ms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.monitor.engine import Monitor

__all__ = [
    "Detector",
    "default_detectors",
    "detector",
    "detector_registry",
]


class Detector:
    """Base class: declare routing interests, receive stream callbacks."""

    #: Registry name; set by the ``@detector`` decorator.
    name: str = ""
    #: Metric names whose recordings this detector wants (``on_sample``).
    metric_names: Tuple[str, ...] = ()
    #: Track prefixes whose spans/instants this detector wants.
    track_prefixes: Tuple[str, ...] = ()
    #: FaultPlan kinds whose symptoms this detector watches (scoring).
    kinds: Tuple[str, ...] = ()
    #: Max lag between fault injection and a creditable detection (scoring).
    match_window_s: Seconds = 15 * MINUTE

    def on_sample(
        self, mon: "Monitor", metric: Metric, value: Scalar, ts: Optional[Seconds]
    ) -> None:
        """A metric this detector subscribed to recorded ``value``."""

    def on_span(self, mon: "Monitor", span: Span) -> None:
        """A span on a subscribed track prefix completed."""

    def on_instant(self, mon: "Monitor", ev: InstantEvent) -> None:
        """An instant on a subscribed track prefix was recorded."""

    def on_time(self, mon: "Monitor", ts: Seconds) -> None:
        """Periodic sim-time tick (quiet-period resolution, timeouts)."""

    def finish(self, mon: "Monitor", ts: Seconds) -> None:
        """End of run: flush pending window state."""


_REGISTRY: Dict[str, Type[Detector]] = {}


def detector(name: str) -> Callable[[Type[Detector]], Type[Detector]]:
    """Class decorator: register a :class:`Detector` under ``name``."""

    def wrap(cls: Type[Detector]) -> Type[Detector]:
        if not issubclass(cls, Detector):
            raise ReproError(f"@detector({name!r}) needs a Detector subclass")
        if name in _REGISTRY:
            raise ReproError(f"detector {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return wrap


def detector_registry() -> Dict[str, Type[Detector]]:
    """Name -> class for every registered detector."""
    return dict(_REGISTRY)


def default_detectors() -> List[Detector]:
    """Fresh instances of every registered detector, in name order."""
    return [_REGISTRY[name]() for name in sorted(_REGISTRY)]


@detector("link_congestion")
class LinkCongestionDetector(Detector):
    """Sustained ``link_util`` above threshold on one link.

    Hysteresis: a link becomes *hot* at ``util_threshold`` and must fall
    back below ``clear_threshold`` to reset; the alert fires only after
    the link has stayed hot for ``hold_s`` of sim-time, so single-sample
    spikes (bursty but healthy traffic) never fire.
    """

    metric_names = ("link_util",)
    kinds = ("link_flap", "nic_down")
    match_window_s = 15 * MINUTE

    def __init__(
        self,
        util_threshold: Scalar = 0.9,
        clear_threshold: Scalar = 0.8,
        hold_s: Seconds = 2 * MINUTE,
    ) -> None:
        self.util_threshold = util_threshold
        self.clear_threshold = clear_threshold
        self.hold_s = hold_s
        self._hot_since: Dict[str, float] = {}
        self._recent: Dict[str, TimeWindow] = {}

    def on_sample(
        self, mon: "Monitor", metric: Metric, value: Scalar, ts: Optional[Seconds]
    ) -> None:
        if ts is None:
            return
        link = metric.labels.get("link", metric.full_name)
        window = self._recent.get(link)
        if window is None:
            window = self._recent[link] = TimeWindow(5 * MINUTE)
        window.add(ts, value)
        if value >= self.util_threshold:
            since = self._hot_since.setdefault(link, ts)
            if ts - since >= self.hold_s:
                mon.fire(
                    self.name, link, ts,
                    severity="warning",
                    summary=f"link {link} utilization sustained >= "  # repro: noqa[PERF001] - alert path, threshold-gated
                            f"{self.util_threshold:.2f}",
                    util=value, window_mean=window.mean,
                    hot_for_s=ts - since,
                )
        elif value <= self.clear_threshold:
            self._hot_since.pop(link, None)
            mon.resolve(self.name, link, ts)


@detector("collective_straggler")
class CollectiveStragglerDetector(Detector):
    """An HFReduce rank far slower than its peers in the same round.

    Rounds are recognised by the shared start timestamp of the ``d2h``
    stage spans across ranks; when the round's span set is complete (the
    next round begins, or the run ends) each rank's duration is compared
    against the round median — a hung host drags its rank out by an
    order of magnitude while peers stay tight.
    """

    track_prefixes = ("hfreduce/",)
    kinds = ("host_hang",)
    match_window_s = 30 * MINUTE

    def __init__(self, ratio: Scalar = 3.0, min_peers: Count = 4) -> None:
        self.ratio = ratio
        self.min_peers = min_peers
        self._round_ts: Optional[float] = None
        self._round: List[Tuple[str, float]] = []

    def on_span(self, mon: "Monitor", span: Span) -> None:
        if span.name != "d2h" or span.dur is None:
            return
        entity = str((span.args or {}).get("node", span.track))  # repro: noqa[PERF001] - empty-dict fallback, missing-args only
        if self._round_ts is not None and span.ts != self._round_ts:
            self._evaluate(mon)
        self._round_ts = span.ts
        self._round.append((entity, span.dur))

    def finish(self, mon: "Monitor", ts: Seconds) -> None:
        self._evaluate(mon)

    def _evaluate(self, mon: "Monitor") -> None:
        round_ts, ranks = self._round_ts, self._round
        self._round_ts, self._round = None, []  # repro: noqa[PERF001] - per-round reset; list ownership moves to `ranks`
        if round_ts is None or len(ranks) < self.min_peers:
            return
        durs = sorted(d for _, d in ranks)  # repro: noqa[PERF001] - per round, not per span
        mid = len(durs) // 2
        median = durs[mid] if len(durs) % 2 else 0.5 * (durs[mid - 1] + durs[mid])
        if median <= 0.0:
            return
        for entity, dur in ranks:
            if dur >= self.ratio * median:
                mon.fire(
                    self.name, entity, round_ts + dur,
                    severity="warning",
                    summary=f"rank on {entity} is {dur / median:.1f}x the "  # repro: noqa[PERF001] - alert path, ratio-gated
                            f"round median d2h duration",
                    dur_s=dur, median_s=median,
                )
            else:
                mon.resolve(self.name, entity, round_ts + dur)


@detector("xid_ecc_burst")
class XidEccBurstDetector(Detector):
    """Repeated Xid/ECC events on one node within a burst window.

    Each event is classified through the Table-V taxonomy
    (:func:`repro.reliability.xid.classify_xid`); *serious* means any
    action beyond CHECK_APPLICATION (the paper treats those as user-code
    noise). Two serious events — or three of any kind — inside
    ``burst_window_s`` convict the node; severity escalates to critical
    when the worst action is NODE_REBOOT or RMA. The alert resolves
    after the node stays quiet for ``quiet_s``.
    """

    track_prefixes = ("health/",)
    kinds = ("gpu_xid", "ecc_error")
    match_window_s = 10 * MINUTE

    #: Escalation order of Table-V actions (index = badness).
    _ACTION_RANK = (
        Action.CHECK_APPLICATION, Action.STRESS_TEST, Action.GPU_RESET,
        Action.NODE_REBOOT, Action.RMA,
    )

    def __init__(
        self,
        burst_window_s: Seconds = 5 * MINUTE,
        quiet_s: Seconds = 8 * MINUTE,
        serious_count: Count = 2,
        total_count: Count = 3,
    ) -> None:
        self.burst_window_s = burst_window_s
        self.quiet_s = quiet_s
        self.serious_count = serious_count
        self.total_count = total_count
        self._events: Dict[str, Deque[Tuple[float, int, bool]]] = {}
        self._n_serious: Dict[str, int] = {}
        self._last_event: Dict[str, float] = {}

    def on_instant(self, mon: "Monitor", ev: InstantEvent) -> None:
        if ev.name != "xid" or not ev.args:
            return
        node = str(ev.args.get("node", ev.track.rsplit("/", 1)[-1]))
        code = int(ev.args["code"])
        info = classify_xid(code)
        serious = info.action is not Action.CHECK_APPLICATION
        events = self._events.setdefault(node, deque())
        events.append((ev.ts, code, serious))
        # Running serious-event count, adjusted on append/expiry, instead
        # of re-summing the window per event (PERF-sweep finding).
        n_serious = self._n_serious.get(node, 0) + (1 if serious else 0)
        cutoff = ev.ts - self.burst_window_s
        while events and events[0][0] < cutoff:
            if events.popleft()[2]:
                n_serious -= 1
        self._n_serious[node] = n_serious
        self._last_event[node] = ev.ts
        if n_serious < self.serious_count and len(events) < self.total_count:
            return
        codes = sorted({c for _, c, _ in events})  # repro: noqa[PERF001] - alert path, past the burst-threshold return
        worst = max(
            (classify_xid(c).action for c in codes),  # repro: noqa[PERF001] - alert path, past the burst-threshold return
            key=self._ACTION_RANK.index,
        )
        severity = (
            "critical" if worst in (Action.NODE_REBOOT, Action.RMA)
            else "warning"
        )
        mon.fire(
            self.name, node, ev.ts,
            severity=severity,
            summary=f"xid burst on {node}: {len(events)} events "  # repro: noqa[PERF001] - alert path
                    f"({n_serious} serious) -> {worst.value}",
            action=worst.value, codes=codes,
        )

    def on_time(self, mon: "Monitor", ts: Seconds) -> None:
        for node, last in list(self._last_event.items()):
            if ts - last >= self.quiet_s:
                mon.resolve(self.name, node, ts)
                del self._last_event[node]
                self._events.pop(node, None)
                self._n_serious.pop(node, None)


@detector("queue_wait_slo")
class QueueWaitSloDetector(Detector):
    """Scheduler queue waits breach the SLO.

    Every ``task_queue_wait_s`` observation feeds an online
    :class:`~repro.monitor.windows.QuantileSketch` (the p50/p99 the
    multi-tenant SLO accounting needs); any single wait beyond ``slo_s``
    fires. The alert resolves once ``clear_after_s`` passes with every
    observed wait back under the SLO.
    """

    metric_names = ("task_queue_wait_s",)
    kinds = ("host_hang", "gpu_xid", "ecc_error")
    match_window_s = 3 * 60 * MINUTE

    def __init__(
        self,
        slo_s: Seconds = 15 * MINUTE,
        clear_after_s: Seconds = 30 * MINUTE,
    ) -> None:
        self.slo_s = slo_s
        self.clear_after_s = clear_after_s
        self.waits = QuantileSketch()
        self._last_breach: Optional[float] = None

    def _maybe_resolve(self, mon: "Monitor", ts: Seconds) -> None:
        if (
            self._last_breach is not None
            and ts - self._last_breach >= self.clear_after_s
        ):
            mon.resolve(self.name, "scheduler", ts)
            self._last_breach = None

    def on_sample(
        self, mon: "Monitor", metric: Metric, value: Scalar, ts: Optional[Seconds]
    ) -> None:
        if ts is None:
            return
        self.waits.add(value)
        if value > self.slo_s:
            self._last_breach = ts
            mon.fire(
                self.name, "scheduler", ts,
                severity="warning",
                summary=f"task queue wait {value:.0f}s breaches the "  # repro: noqa[PERF001] - alert path, SLO-breach only
                        f"{self.slo_s:.0f}s SLO",
                wait_s=value,
                p50_s=self.waits.quantile(0.5),
                p99_s=self.waits.quantile(0.99),
            )
        else:
            self._maybe_resolve(mon, ts)

    def on_time(self, mon: "Monitor", ts: Seconds) -> None:
        self._maybe_resolve(mon, ts)


@detector("storage_latency")
class StorageLatencyDetector(Detector):
    """3FS request latency regresses vs its own rolling baseline.

    Healthy request durations feed a :class:`RollingWindow` baseline;
    once the baseline is warm, a request slower than ``ratio`` times the
    baseline median (and above an absolute ``floor_s``, so microsecond
    jitter can't fire) raises the alert. A healthy request resolves it.
    """

    track_prefixes = ("fs3/",)
    kinds = ("storage_node_loss",)
    match_window_s = 15 * MINUTE

    def __init__(
        self,
        ratio: Scalar = 4.0,
        baseline_len: Count = 64,
        warmup: Count = 8,
        floor_s: Seconds = ms(1.0),
    ) -> None:
        self.ratio = ratio
        self.warmup = warmup
        self.floor_s = floor_s
        self.baseline = RollingWindow(baseline_len)

    def on_span(self, mon: "Monitor", span: Span) -> None:
        if span.name not in ("read", "write") or span.dur is None:
            return
        end_ts = span.ts + span.dur
        if len(self.baseline) >= self.warmup:
            threshold = max(self.floor_s, self.ratio * self.baseline.median())
            if span.dur >= threshold:
                mon.fire(
                    self.name, "fs3", end_ts,
                    severity="warning",
                    summary=f"fs3 {span.name} latency {span.dur * 1e3:.2f}ms "  # repro: noqa[PERF001] - alert path, regression-gated
                            f"is {span.dur / max(self.baseline.median(), 1e-12):.1f}x "
                            f"the rolling baseline",
                    dur_s=span.dur, baseline_s=self.baseline.median(),
                )
                return
            mon.resolve(self.name, "fs3", end_ts)
        self.baseline.add(span.dur)
