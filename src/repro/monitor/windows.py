"""Streaming aggregation primitives: windows and a quantile sketch.

Everything here is O(1) memory per series (or O(window) for the explicit
rolling forms) and keyed on *simulated* timestamps supplied by the caller
— no wall clock is ever read, so monitored runs stay replay-deterministic.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.errors import ReproError
from repro.units import Count, Scalar, Seconds

__all__ = [
    "QuantileSketch",
    "RollingWindow",
    "TimeWindow",
    "TumblingWindow",
    "WindowStat",
]


@dataclass(frozen=True)
class WindowStat:
    """Summary of one closed tumbling window."""

    start: Seconds
    end: Seconds
    count: Count
    total: Scalar
    vmin: Scalar
    vmax: Scalar

    @property
    def mean(self) -> Scalar:
        """Mean of the window's samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class TumblingWindow:
    """Fixed-width, non-overlapping sim-time windows over one series.

    ``add(ts, value)`` accumulates into the window containing ``ts``;
    when a sample lands past the current window's end, the finished
    window's :class:`WindowStat` is returned (and ``None`` otherwise).
    Windows are aligned to multiples of the width so identical streams
    produce identical window boundaries regardless of the first ts.
    """

    __slots__ = ("width", "_start", "_count", "_total", "_vmin", "_vmax")

    def __init__(self, width_s: Seconds) -> None:
        if width_s <= 0:
            raise ReproError(f"window width must be positive, got {width_s}")
        self.width = width_s
        self._start: Optional[float] = None
        self._count = 0
        self._total = 0.0
        self._vmin = math.inf
        self._vmax = -math.inf

    def _close(self) -> WindowStat:
        assert self._start is not None
        stat = WindowStat(
            start=self._start, end=self._start + self.width,
            count=self._count, total=self._total,
            vmin=self._vmin, vmax=self._vmax,
        )
        self._count = 0
        self._total = 0.0
        self._vmin = math.inf
        self._vmax = -math.inf
        return stat

    def add(self, ts: Seconds, value: Scalar) -> Optional[WindowStat]:
        """Accumulate one sample; returns the previous window if it closed."""
        start = math.floor(ts / self.width) * self.width
        closed: Optional[WindowStat] = None
        if self._start is None:
            self._start = start
        elif start > self._start:
            closed = self._close()
            self._start = start
        self._count += 1
        self._total += value
        if value < self._vmin:
            self._vmin = value
        if value > self._vmax:
            self._vmax = value
        return closed

    def flush(self) -> Optional[WindowStat]:
        """Close and return the in-progress window (``None`` if empty)."""
        if self._start is None or not self._count:
            return None
        stat = self._close()
        self._start = None
        return stat


class RollingWindow:
    """Last-``capacity`` samples of one series (count-bounded)."""

    __slots__ = ("capacity", "_vals", "_total")

    def __init__(self, capacity: Count) -> None:
        if capacity <= 0:
            raise ReproError(f"window capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._vals: Deque[float] = deque(maxlen=capacity)
        self._total = 0.0

    def add(self, value: Scalar) -> None:
        """Append a sample, evicting the oldest past capacity."""
        if len(self._vals) == self.capacity:
            self._total -= self._vals[0]
        self._vals.append(value)
        self._total += value

    def __len__(self) -> int:
        return len(self._vals)

    @property
    def full(self) -> bool:
        """Whether the window holds ``capacity`` samples."""
        return len(self._vals) == self.capacity

    @property
    def mean(self) -> Scalar:
        """Mean of the held samples (0.0 when empty)."""
        return self._total / len(self._vals) if self._vals else 0.0

    @property
    def vmax(self) -> Scalar:
        """Max of the held samples (0.0 when empty)."""
        return max(self._vals) if self._vals else 0.0

    def median(self) -> Scalar:
        """Median of the held samples (0.0 when empty)."""
        if not self._vals:
            return 0.0
        vals = sorted(self._vals)
        mid = len(vals) // 2
        if len(vals) % 2:
            return vals[mid]
        return 0.5 * (vals[mid - 1] + vals[mid])


class TimeWindow:
    """Samples from the trailing ``width_s`` of sim-time (ts-bounded)."""

    __slots__ = ("width", "_vals", "_total")

    def __init__(self, width_s: Seconds) -> None:
        if width_s <= 0:
            raise ReproError(f"window width must be positive, got {width_s}")
        self.width = width_s
        self._vals: Deque[Tuple[float, float]] = deque()
        self._total = 0.0

    def add(self, ts: Seconds, value: Scalar) -> None:
        """Append a sample and evict everything older than ``ts - width``."""
        self._vals.append((ts, value))
        self._total += value
        self.prune(ts)

    def prune(self, now: Seconds) -> None:
        """Evict samples older than ``now - width``."""
        cutoff = now - self.width
        vals = self._vals
        while vals and vals[0][0] < cutoff:
            self._total -= vals.popleft()[1]

    def __len__(self) -> int:
        return len(self._vals)

    @property
    def mean(self) -> Scalar:
        """Mean of the retained samples (0.0 when empty)."""
        return self._total / len(self._vals) if self._vals else 0.0

    @property
    def vmax(self) -> Scalar:
        """Max of the retained samples (0.0 when empty)."""
        return max(v for _, v in self._vals) if self._vals else 0.0


class QuantileSketch:
    """Streaming p50/p99 without storing samples: fixed log-spaced buckets.

    Positive values land in geometric buckets (``bins_per_decade`` per
    decade between ``lo`` and ``hi``); zero/negative values and overflows
    get dedicated under/overflow buckets. ``quantile`` interpolates
    linearly inside the target bucket and clamps to the exactly-tracked
    ``[vmin, vmax]``, so the relative error is bounded by one bucket
    ratio (~15% at the default 16 bins/decade) and the extremes are exact.
    Memory is one int per bucket regardless of stream length — the
    fixed-bucket alternative to a P² sketch, chosen because bucket counts
    sum deterministically and merge trivially.
    """

    __slots__ = (
        "lo", "hi", "bins_per_decade", "_ratio_log", "_nbuckets",
        "counts", "count", "total", "vmin", "vmax",
    )

    def __init__(
        self,
        lo: Scalar = 1e-9,
        hi: Scalar = 1e9,
        bins_per_decade: Count = 16,
    ) -> None:
        if not 0 < lo < hi:
            raise ReproError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
        if bins_per_decade <= 0:
            raise ReproError(f"bins_per_decade must be positive, got {bins_per_decade}")
        self.lo = lo
        self.hi = hi
        self.bins_per_decade = bins_per_decade
        self._ratio_log = math.log(10.0) / bins_per_decade
        decades = math.log10(hi / lo)
        # +2: underflow bucket (<= lo, incl. zero/negatives) and overflow (> hi).
        self._nbuckets = int(math.ceil(decades * bins_per_decade)) + 2
        self.counts: List[int] = [0] * self._nbuckets  # repro: noqa[PERF001] - per new sketch, not per sample
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def _bucket(self, value: Scalar) -> int:
        if value <= self.lo:
            return 0
        if value > self.hi:
            return self._nbuckets - 1
        return 1 + min(
            self._nbuckets - 3,
            int(math.log(value / self.lo) / self._ratio_log),
        )

    def _edges(self, i: int) -> Tuple[float, float]:
        if i == 0:
            return (0.0, self.lo)
        if i == self._nbuckets - 1:
            return (self.hi, self.vmax if self.vmax > self.hi else self.hi)
        lo = self.lo * math.exp((i - 1) * self._ratio_log)
        return (lo, lo * math.exp(self._ratio_log))

    def add(self, value: Scalar) -> None:
        """Record one observation."""
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> Scalar:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: Scalar) -> Scalar:
        """Estimate the q-quantile (q in (0, 1]); 0.0 when empty."""
        if not 0.0 < q <= 1.0:
            raise ReproError(f"quantile fraction must be in (0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        running = 0
        for i, n in enumerate(self.counts):
            if not n:
                continue
            if running + n >= rank:
                lo, hi = self._edges(i)
                frac = (rank - running) / n
                est = lo + (hi - lo) * frac
                return max(self.vmin, min(est, self.vmax))
            running += n
        return self.vmax  # unreachable: running totals to self.count
