"""Alert lifecycle: firing/resolved, dedup, severity, export.

An alert is identified by ``(detector, entity)`` — e.g.
``("link_congestion", "sw0->sw4")``. Re-firing an active alert dedups
into the existing one (bumping its ``count`` and escalating severity if
the new report is worse) instead of spamming; resolving closes it and a
later fire on the same identity opens a fresh alert. Every transition is
stamped with *simulated* time and, when a tracer is attached, mirrored
as an instant on the ``alerts/<detector>`` track so firings line up with
the fault timeline in the exported trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.telemetry import TelemetrySession
from repro.units import Seconds

__all__ = ["Alert", "AlertManager", "SEVERITIES", "write_alerts_jsonl"]

#: Recognised severities, mildest first (index = escalation order).
SEVERITIES: Tuple[str, ...] = ("info", "warning", "critical")


@dataclass
class Alert:
    """One alert instance across its firing->resolved lifecycle."""

    detector: str
    entity: str
    severity: str
    fired_at: Seconds
    summary: str
    data: Dict[str, Any] = field(default_factory=dict)
    resolved_at: Optional[Seconds] = None
    count: int = 1

    @property
    def active(self) -> bool:
        """Whether the alert has not been resolved yet."""
        return self.resolved_at is None

    def to_row(self) -> Dict[str, Any]:
        """One stable-keyed export row (JSONL line, pre-serialization)."""
        row: Dict[str, Any] = {
            "detector": self.detector,
            "entity": self.entity,
            "severity": self.severity,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "count": self.count,
            "summary": self.summary,
        }
        if self.data:
            row["data"] = {k: self.data[k] for k in sorted(self.data)}
        return row


class AlertManager:
    """Owns every alert of one monitored run and its dedup state."""

    def __init__(self, session: Optional[TelemetrySession] = None) -> None:
        self.session = session
        self.alerts: List[Alert] = []
        self._active: Dict[Tuple[str, str], Alert] = {}

    # -- lifecycle ---------------------------------------------------------------

    def fire(
        self,
        detector: str,
        entity: str,
        ts: Seconds,
        severity: str = "warning",
        summary: str = "",
        **data: Any,
    ) -> Tuple[Alert, bool]:
        """Raise (or re-report) an alert; returns ``(alert, created)``.

        ``created`` is False when an active alert with the same
        ``(detector, entity)`` identity absorbed this firing.
        """
        if severity not in SEVERITIES:
            raise ReproError(
                f"unknown severity {severity!r}; expected one of {SEVERITIES}"
            )
        key = (detector, entity)
        existing = self._active.get(key)
        if existing is not None:
            existing.count += 1
            if SEVERITIES.index(severity) > SEVERITIES.index(existing.severity):
                existing.severity = severity
            if data:
                existing.data.update(data)
            return existing, False
        alert = Alert(
            detector=detector, entity=entity, severity=severity,
            fired_at=ts, summary=summary, data=dict(data),
        )
        self._active[key] = alert
        self.alerts.append(alert)
        self._record(alert, state="fired", ts=ts)
        return alert, True

    def resolve(self, detector: str, entity: str, ts: Seconds) -> Optional[Alert]:
        """Close the active ``(detector, entity)`` alert, if any."""
        alert = self._active.pop((detector, entity), None)
        if alert is None:
            return None
        alert.resolved_at = ts
        self._record(alert, state="resolved", ts=ts)
        return alert

    def resolve_all(self, ts: Seconds) -> int:
        """Close every still-active alert (end of run); returns how many."""
        n = 0
        for detector, entity in sorted(self._active):
            self.resolve(detector, entity, ts)
            n += 1
        return n

    # -- reading -----------------------------------------------------------------

    def active(self) -> List[Alert]:
        """Currently firing alerts, in identity order."""
        return [self._active[k] for k in sorted(self._active)]

    def by_detector(self, detector: str) -> List[Alert]:
        """All alerts (any state) raised by one detector, in firing order."""
        return [a for a in self.alerts if a.detector == detector]

    # -- telemetry mirror --------------------------------------------------------

    def _record(self, alert: Alert, state: str, ts: Seconds) -> None:
        sess = self.session
        if sess is None:
            return
        sess.registry.counter(
            "alerts_total", detector=alert.detector, state=state
        ).inc(ts=ts)
        if sess.tracer is not None:
            prefix = "alert" if state == "fired" else "resolved"
            sess.tracer.instant(
                f"{prefix}:{alert.detector}",
                ts,
                track=f"alerts/{alert.detector}",
                cat="alert",
                args={"entity": alert.entity, "severity": alert.severity,
                      "summary": alert.summary},
            )


def write_alerts_jsonl(path: str, alerts: List[Alert]) -> int:
    """Write alerts as JSONL in firing order; returns the line count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for alert in alerts:
            fh.write(json.dumps(alert.to_row(), separators=(",", ":")) + "\n")
            n += 1
    return n
