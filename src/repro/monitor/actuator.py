"""The closed loop: node-health alerts drive scheduler drains.

Section VII's validator removes nodes that fail hardware checks from
the scheduling pool; here the :class:`SchedulerActuator` does the same
from *streaming* evidence — when a node-convicting detector (by default
``xid_ecc_burst``) fires, the actuator drains the node out of the HAI
scheduler (gracefully checkpointing whatever ran there), and when the
alert resolves it returns the node to the pool.

The actuator is duck-typed against ``drain_node(name, now=, reason=)`` /
``undrain_node(name, now=)`` rather than importing :mod:`repro.hai`, so
the monitor layer stays below the schedulers in the import DAG and any
scheduler implementing the two methods can close the loop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.monitor.alerts import Alert

__all__ = ["SchedulerActuator"]


class SchedulerActuator:
    """Drain/undrain scheduler nodes from node-health alerts.

    ``node_for`` maps an alert entity to a scheduler node name (identity
    by default — the chaos harness uses it to translate fault-plan node
    ids onto the scheduler's cluster). Returning ``None`` skips the
    alert. Only alerts from ``detectors`` act; everything else is
    ignored so link- or storage-scoped alerts never drain compute nodes.
    """

    def __init__(
        self,
        scheduler: object,
        node_for: Optional[Callable[[str], Optional[str]]] = None,
        detectors: Tuple[str, ...] = ("xid_ecc_burst",),
    ) -> None:
        self.scheduler = scheduler
        self.node_for = node_for if node_for is not None else lambda entity: entity
        self.detectors = detectors
        #: entity -> drained scheduler node, for symmetric undrain.
        self.drained: Dict[str, str] = {}
        self.drains = 0
        self.undrains = 0
        #: Task ids displaced (gracefully interrupted) by drains.
        self.displaced: List[str] = []

    def on_alert(self, alert: Alert) -> None:
        """A new alert fired; drain the convicted node if it maps to one.

        The dedup is per *node*, not per entity: several entities (two
        GPUs of one host, say) may map onto the same scheduler node, and
        the check-then-act on ``alert.entity`` alone would re-drain the
        node and miscount — worse, the first entity to resolve would
        undrain a node other entities still convict.
        """
        if alert.detector not in self.detectors or alert.entity in self.drained:
            return
        node = self.node_for(alert.entity)
        if node is None:
            return
        already_held = node in self.drained.values()
        self.drained[alert.entity] = node
        if already_held:
            return  # another entity already holds this node out of the pool
        victim = self.scheduler.drain_node(  # type: ignore[attr-defined]
            node,
            now=alert.fired_at,
            reason=f"{alert.detector}:{alert.severity}",
        )
        self.drains += 1
        if victim is not None:
            self.displaced.append(victim)

    def on_resolve(self, alert: Alert) -> None:
        """The alert cleared; return the node to the scheduling pool.

        The node goes back only when *no* firing alert still maps to it
        — resolution order between entities sharing a node must not
        change the outcome.
        """
        node = self.drained.pop(alert.entity, None)
        if node is None:
            return
        if node in self.drained.values():
            return  # still convicted through another entity
        self.scheduler.undrain_node(  # type: ignore[attr-defined]
            node, now=alert.resolved_at
        )
        self.undrains += 1
