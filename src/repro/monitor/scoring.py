"""Score detectors against injected :class:`~repro.faults.FaultPlan` truth.

Because the chaos experiment *knows* what it injected, every detector
can be graded like a classifier: an alert is a true positive when it can
be matched one-to-one to an injected fault of a kind the detector
watches, inside that detector's ``match_window_s`` after the injection
time. Matching is greedy in time order (earliest alert takes the
earliest compatible event), which is the standard assignment for
interval matching and — crucially here — deterministic.

A detector may watch several fault kinds whose symptoms are
indistinguishable at its vantage point (a queue-wait breach looks the
same whether the capacity went missing to a host hang or an Xid drain),
so matching runs *jointly* over the union of the detector's kinds:
precision is per detector (``matched / alerts``), while recall and
median time-to-detect are reported per kind against that kind's own
event count.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults import FaultPlan
from repro.monitor.alerts import Alert
from repro.monitor.detectors import Detector
from repro.units import Count, Scalar, Seconds

__all__ = ["DetectionScore", "score_detections"]


@dataclass(frozen=True)
class DetectionScore:
    """One detector's grade against one fault kind's ground truth."""

    detector: str
    kind: str
    events: Count
    alerts: Count
    matched: Count
    precision: Scalar
    recall: Scalar
    median_ttd_s: Optional[Seconds]

    def row(self) -> List[object]:
        """Table row for the chaos report."""
        return [
            self.detector, self.kind, self.events, self.alerts, self.matched,
            self.precision, self.recall,
            self.median_ttd_s if self.median_ttd_s is not None else "-",
        ]


def _match(
    alerts: Sequence[Alert],
    events: Sequence[Tuple[float, str]],
    window_s: Seconds,
) -> List[Tuple[int, int, float]]:
    """Greedy one-to-one (alert, event) pairs within the match window.

    Both sequences must be time-sorted. Returns ``(alert_idx,
    event_idx, ttd)`` triples; an alert firing before its candidate
    event (or after every window) stays unmatched.
    """
    pairs: List[Tuple[int, int, float]] = []
    ei = 0
    taken = [False] * len(events)
    for ai, alert in enumerate(alerts):
        # Skip events whose window closed before this alert fired; they
        # can never match a later (even later-firing) alert either.
        while ei < len(events) and events[ei][0] + window_s < alert.fired_at:
            ei += 1
        for j in range(ei, len(events)):
            etime = events[j][0]
            if etime > alert.fired_at:
                break  # events are sorted; the rest are all in the future
            if not taken[j]:
                taken[j] = True
                pairs.append((ai, j, alert.fired_at - etime))
                break
    return pairs


def score_detections(
    detectors: Sequence[Detector],
    alerts: Sequence[Alert],
    plan: FaultPlan,
) -> List[DetectionScore]:
    """Grade every detector against the plan; rows sorted for stable output.

    Empty denominators score 1.0 (a detector with nothing to find and no
    false alarms is perfect, not undefined).
    """
    by_detector: Dict[str, List[Alert]] = {}
    for alert in alerts:
        by_detector.setdefault(alert.detector, []).append(alert)

    scores: List[DetectionScore] = []
    for det in sorted(detectors, key=lambda d: d.name):
        det_alerts = sorted(
            by_detector.get(det.name, []), key=lambda a: a.fired_at
        )
        events: List[Tuple[float, str]] = sorted(
            (ev.time, ev.kind)
            for ev in plan.events if ev.kind in det.kinds
        )
        pairs = _match(det_alerts, events, det.match_window_s)
        precision = len(pairs) / len(det_alerts) if det_alerts else 1.0
        matched_by_kind: Dict[str, List[float]] = {k: [] for k in det.kinds}
        for _, j, ttd in pairs:
            matched_by_kind[events[j][1]].append(ttd)
        for kind in det.kinds:
            kind_events = sum(1 for _, k in events if k == kind)
            ttds = matched_by_kind[kind]
            scores.append(DetectionScore(
                detector=det.name,
                kind=kind,
                events=kind_events,
                alerts=len(det_alerts),
                matched=len(ttds),
                precision=precision,
                recall=len(ttds) / kind_events if kind_events else 1.0,
                median_ttd_s=statistics.median(ttds) if ttds else None,
            ))
    return scores
