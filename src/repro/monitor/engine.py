"""The :class:`Monitor`: session subscription, routing, and aggregation.

``Monitor(session).attach()`` subscribes to the session's metrics
registry and tracer; from then on every counter increment, gauge set,
histogram observation, completed span, and instant streams through the
monitor *as it is recorded*, with no second pass over stored telemetry.
The monitor keeps per-metric online aggregates (tumbling windows + a
quantile sketch) and routes each event to the detectors that declared an
interest; detectors raise alerts through :meth:`Monitor.fire`, which
dedups via the :class:`~repro.monitor.alerts.AlertManager` and forwards
newly created alerts to any attached actuators (the closed loop).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.monitor.alerts import Alert, AlertManager
from repro.monitor.detectors import Detector, default_detectors
from repro.monitor.windows import QuantileSketch, TumblingWindow, WindowStat
from repro.telemetry import TelemetrySession
from repro.telemetry.core import InstantEvent, Span
from repro.telemetry.metrics import Metric
from repro.units import MINUTE, Scalar, Seconds

__all__ = ["Monitor", "SeriesAgg"]


class SeriesAgg:
    """Online aggregate of one metric name: quantile sketch + windows."""

    __slots__ = ("sketch", "window", "closed")

    def __init__(self, window_s: Seconds) -> None:
        self.sketch = QuantileSketch()
        self.window = TumblingWindow(window_s)
        self.closed: List[WindowStat] = []  # repro: noqa[PERF001] - per new series, not per sample

    def add(self, ts: Optional[Seconds], value: Scalar) -> None:
        self.sketch.add(value)
        if ts is not None:
            stat = self.window.add(ts, value)
            if stat is not None:
                self.closed.append(stat)


class Monitor:
    """Streaming observer over one telemetry session.

    ``detectors`` defaults to fresh instances of every registered
    detector; ``actuators`` are objects with ``on_alert(alert)`` /
    ``on_resolve(alert)`` (see :class:`~repro.monitor.actuator.
    SchedulerActuator`). ``aggregate`` names the metrics to keep online
    windows/sketches for (beyond whatever the detectors consume).
    """

    def __init__(
        self,
        session: TelemetrySession,
        detectors: Optional[Sequence[Detector]] = None,
        actuators: Sequence[object] = (),
        aggregate: Iterable[str] = ("task_queue_wait_s", "flow_duration_s"),
        window_s: Seconds = 5 * MINUTE,
    ) -> None:
        self.session = session
        self.detectors: List[Detector] = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.actuators = list(actuators)
        self.alert_manager = AlertManager(session)
        self.window_s = window_s
        self._aggregate_names = set(aggregate)
        self._series: Dict[str, SeriesAgg] = {}
        self._by_metric: Dict[str, List[Detector]] = {}
        for det in self.detectors:
            for name in det.metric_names:
                self._by_metric.setdefault(name, []).append(det)
        self._span_dets: List[Tuple[Tuple[str, ...], Detector]] = [
            (det.track_prefixes, det)
            for det in self.detectors if det.track_prefixes
        ]
        self._attached = False
        self.now: Seconds = 0.0

    # -- session wiring ----------------------------------------------------------

    def attach(self) -> "Monitor":
        """Subscribe to the session's registry and tracer; returns self."""
        if self._attached:
            raise ReproError("monitor is already attached")
        self.session.registry.subscribe(self._on_metric)
        if self.session.tracer is not None:
            self.session.tracer.subscribe(self._on_trace)
        self._attached = True
        return self

    def detach(self) -> None:
        """Unsubscribe (idempotent)."""
        if not self._attached:
            return
        self.session.registry.unsubscribe(self._on_metric)
        if self.session.tracer is not None:
            self.session.tracer.unsubscribe(self._on_trace)
        self._attached = False

    # -- stream callbacks --------------------------------------------------------

    def _on_metric(
        self, metric: Metric, value: Scalar, ts: Optional[Seconds]
    ) -> None:
        if ts is not None and ts > self.now:
            self.now = ts
        if metric.name in self._aggregate_names:
            agg = self._series.get(metric.name)
            if agg is None:
                agg = self._series[metric.name] = SeriesAgg(self.window_s)
            agg.add(ts, value)
        dets = self._by_metric.get(metric.name)
        if dets:
            for det in dets:
                det.on_sample(self, metric, value, ts)

    def _on_trace(self, kind: str, ev: Union[Span, InstantEvent]) -> None:
        if ev.ts > self.now:
            self.now = ev.ts
        for prefixes, det in self._span_dets:
            if not ev.track.startswith(prefixes):
                continue
            if kind == "span":
                det.on_span(self, ev)  # type: ignore[arg-type]
            else:
                det.on_instant(self, ev)  # type: ignore[arg-type]

    def advance(self, ts: Seconds) -> None:
        """Drive detectors' time-based logic to simulated time ``ts``."""
        if ts > self.now:
            self.now = ts
        for det in self.detectors:
            det.on_time(self, ts)

    def finish(self, ts: Optional[Seconds] = None) -> None:
        """Flush detector state and close every still-active alert."""
        at = self.now if ts is None else ts
        for det in self.detectors:
            det.finish(self, at)
        self.alert_manager.resolve_all(at)

    # -- detector-facing alert API -----------------------------------------------

    def fire(
        self,
        detector: str,
        entity: str,
        ts: Seconds,
        severity: str = "warning",
        summary: str = "",
        **data: object,
    ) -> Alert:
        """Raise an alert (deduped); new firings reach the actuators."""
        alert, created = self.alert_manager.fire(
            detector, entity, ts, severity=severity, summary=summary, **data
        )
        if created:
            for actuator in self.actuators:
                actuator.on_alert(alert)  # type: ignore[attr-defined]
        return alert

    def resolve(self, detector: str, entity: str, ts: Seconds) -> Optional[Alert]:
        """Resolve an active alert; resolutions reach the actuators."""
        alert = self.alert_manager.resolve(detector, entity, ts)
        if alert is not None:
            for actuator in self.actuators:
                actuator.on_resolve(alert)  # type: ignore[attr-defined]
        return alert

    # -- reading -----------------------------------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        """Every alert raised so far, in firing order."""
        return self.alert_manager.alerts

    def series(self, name: str) -> Optional[SeriesAgg]:
        """The online aggregate for one metric name, if any samples landed."""
        return self._series.get(name)

    def quantile(self, name: str, q: Scalar) -> Optional[Scalar]:
        """Online quantile of an aggregated metric (None before samples)."""
        agg = self._series.get(name)
        return agg.sketch.quantile(q) if agg is not None else None
