"""Streaming cluster-health monitoring (Fire-Flyer paper, Section VII).

The paper's operations platform watches hardware metrics continuously,
classifies Xid/ECC anomalies into the Table-V/VI repair actions, and
automatically removes sick nodes from scheduling. This package is that
loop for the simulated cluster: it *subscribes* to the live telemetry
session (:class:`~repro.telemetry.metrics.MetricsRegistry` observer +
:class:`~repro.telemetry.core.Tracer` observer) and turns the raw stream
into

* windowed time-series and online quantiles (:mod:`repro.monitor.windows`),
* anomaly detections from a small ``@detector`` registry
  (:mod:`repro.monitor.detectors`),
* deduplicated firing/resolved alerts with sim-timestamps and trace
  instants on an ``alerts/...`` track (:mod:`repro.monitor.alerts`),
* closed-loop scheduler actions — draining the nodes the detectors
  convict, as the paper's validator does (:mod:`repro.monitor.actuator`),
* precision/recall/time-to-detect scoring of every detector against an
  injected :class:`~repro.faults.FaultPlan` ground truth
  (:mod:`repro.monitor.scoring`).

Everything is sim-time: detectors never read a wall clock, so a monitored
run replays byte-identically (``python -m repro.analysis replay chaos``).
"""

from repro.monitor.actuator import SchedulerActuator
from repro.monitor.alerts import Alert, AlertManager, write_alerts_jsonl
from repro.monitor.detectors import (
    Detector,
    default_detectors,
    detector,
    detector_registry,
)
from repro.monitor.engine import Monitor
from repro.monitor.scoring import DetectionScore, score_detections
from repro.monitor.windows import (
    QuantileSketch,
    RollingWindow,
    TimeWindow,
    TumblingWindow,
    WindowStat,
)

__all__ = [
    "Alert",
    "AlertManager",
    "DetectionScore",
    "Detector",
    "Monitor",
    "QuantileSketch",
    "RollingWindow",
    "SchedulerActuator",
    "TimeWindow",
    "TumblingWindow",
    "WindowStat",
    "default_detectors",
    "detector",
    "detector_registry",
    "score_detections",
    "write_alerts_jsonl",
]
