"""Exception taxonomy for the Fire-Flyer reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class HardwareConfigError(ReproError):
    """Raised when a hardware specification is inconsistent."""


class TopologyError(ReproError):
    """Raised when a network topology cannot be constructed or routed."""


class RoutingError(TopologyError):
    """Raised when no route exists between two endpoints."""


class CollectiveError(ReproError):
    """Raised for invalid collective-communication configurations."""


class ParallelismError(ReproError):
    """Raised when a HaiScale parallelism plan is infeasible."""


class FS3Error(ReproError):
    """Base class for 3FS file-system errors."""


class FS3NotFound(FS3Error):
    """Raised when a path, inode, or chunk does not exist."""


class FS3Exists(FS3Error):
    """Raised when creating a path that already exists."""


class FS3Unavailable(FS3Error):
    """Raised when no healthy replica / service can serve a request."""


class FS3Conflict(FS3Error):
    """Raised on write conflicts or version mismatches."""


class SchedulerError(ReproError):
    """Raised for invalid HAI platform scheduling requests."""


class CheckpointError(ReproError):
    """Raised when checkpoint save/load fails or is corrupt."""


class ValidationFailure(ReproError):
    """Raised by the validator suite when a node fails a health check."""
