"""Generator-driven simulation processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.simcore.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simcore.kernel import Environment

ProcGen = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator so that yielded events suspend/resume it.

    A process is itself an :class:`Event` that fires when the generator
    returns (success, with the return value) or raises (failure). This lets
    processes wait on each other by yielding the process object.
    """

    __slots__ = ("generator", "name", "_target")

    def __init__(self, env: "Environment", generator: ProcGen, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process requires a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick off the process via an immediately-scheduled initialization
        # event so that it starts inside the event loop, not synchronously.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a terminated process is an error; interrupting a
        process that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        interrupt_ev = Event(self.env)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(lambda _ev: self._do_interrupt(cause))
        interrupt_ev.succeed()

    def _do_interrupt(self, cause: Any) -> None:
        if self.triggered:
            return  # terminated before the interrupt was delivered
        target = self._target
        if target is not None and not target.processed:
            # Detach from the event we were waiting on.
            try:
                target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):  # pragma: no cover - defensive
                pass
        self._target = None
        self._step(Interrupt(cause), throw=True)

    # -- stepping ------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            self._step(event._value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        env = self.env
        hooks = getattr(env, "_wakeup_hooks", None)
        if hooks:
            for hook in hooks:
                hook(self)
        env._active_process = self
        try:
            if throw:
                if isinstance(value, BaseException):
                    ev = self.generator.throw(value)
                else:  # pragma: no cover - defensive
                    ev = self.generator.throw(SimulationError(repr(value)))
            else:
                ev = self.generator.send(value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if not isinstance(ev, Event):
            # Misuse: feed an error back into the generator on next step.
            self._step(
                SimulationError(f"process {self.name!r} yielded non-event {ev!r}"),  # repro: noqa[PERF001] - misuse error path
                throw=True,
            )
            return
        if ev.processed:
            # Already-processed events resume the process on the next tick.
            relay = Event(env)
            relay._ok = ev._ok
            relay._value = ev._value
            relay.callbacks.append(self._resume)
            env._schedule(relay)
            self._target = relay
        else:
            ev.callbacks.append(self._resume)
            self._target = ev

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r}>"
