"""Event primitives for the simulation kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simcore.kernel import Environment


PENDING = object()  # sentinel: event not yet triggered


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events begin *pending*; calling :meth:`succeed` or :meth:`fail`
    schedules them for processing, at which point registered callbacks run
    and any waiting processes resume.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[[Event], None]]] = []  # repro: noqa[PERF001] - the event object's own state
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether callbacks have already been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering ----------------------------------------------------------

    def _set_ok(self, value: Any = None) -> "Event":
        """Mark succeeded *without* scheduling (the batch-coalescing path).

        Callers must hand the event to ``Environment._schedule_batch`` in
        the same tick; an outcome set but never scheduled would strand any
        waiters.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        return self

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._set_ok(value)
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome into this one (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._value is PENDING else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 *, _defer: bool = False) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        # _defer: Environment.timeouts() schedules the whole group as one
        # coalesced heap entry instead of one push per Timeout.
        if not _defer:
            env._schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout delay={self.delay}>"


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class _Condition(Event):
    """Base for ``AllOf`` / ``AnyOf`` composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: List[Event] = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.triggered and ev._ok
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every component event has fired; fails fast on failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any component event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())
