"""The simulation environment: clock + event heap + run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.analysis import sanitizer as _sanitizer
from repro.errors import SimulationError
from repro.simcore.events import AllOf, AnyOf, Event, Timeout
from repro.simcore.process import ProcGen, Process

_INFINITY = float("inf")

StepHook = Callable[[float, Event], None]
BatchHook = Callable[[float, Tuple[Event, ...]], None]
WakeupHook = Callable[[Process], None]


class Environment:
    """Owns the simulation clock and executes scheduled events in order.

    Events scheduled at equal times are processed in FIFO scheduling order
    (a monotonically increasing sequence number breaks ties), which makes
    simulations deterministic. Events triggered together at the same
    timestamp (a resource granting several waiters, a store handoff, a
    group of :meth:`timeouts`) are *coalesced*: one heap entry carries the
    whole group, so a burst costs one push/pop instead of one per event,
    and batch hooks see it as a single dispatch.

    *Step hooks* run after every processed event with ``(time, event)``;
    *batch hooks* run once per popped heap entry with
    ``(time, events_tuple)`` (singles arrive as 1-tuples); *wakeup hooks*
    run whenever a process is resumed. All lists are empty unless
    something registers (the check is a falsy-list test per event). When a
    :mod:`repro.telemetry` session is active at construction time, hooks
    that count steps and per-process wakeups into the session's metrics
    registry are attached automatically; ``label`` names this environment
    in those metrics.
    """

    def __init__(self, initial_time: float = 0.0, label: str = "env") -> None:
        self._now = float(initial_time)
        # Heap entries are (time, seq, payload) where payload is one Event
        # or a tuple of same-timestamp events; seq is unique, so payloads
        # are never compared.
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self.label = label
        self._step_hooks: List[StepHook] = []
        self._batch_hooks: List[BatchHook] = []
        self._wakeup_hooks: List[WakeupHook] = []
        sess = telemetry.session()
        if sess is not None:
            self._attach_telemetry(sess)
        if _sanitizer.enabled():
            # DES invariant checks (event-time monotonicity) ride the same
            # step-hook API the telemetry layer uses.
            _sanitizer.EnvironmentMonitor(self.label).attach(self)

    # -- hooks ---------------------------------------------------------------

    def add_step_hook(self, hook: StepHook) -> None:
        """Call ``hook(time, event)`` after every processed event."""
        self._step_hooks.append(hook)

    def add_batch_hook(self, hook: BatchHook) -> None:
        """Call ``hook(time, events)`` once per popped heap entry.

        A coalesced group arrives as one tuple; an individually scheduled
        event arrives as a 1-tuple. Observers that only need per-tick
        aggregates (counters, monotonicity checks) should prefer this over
        :meth:`add_step_hook` — it is dispatched once per pop, not once
        per event.
        """
        self._batch_hooks.append(hook)

    def add_wakeup_hook(self, hook: WakeupHook) -> None:
        """Call ``hook(process)`` whenever a process is stepped."""
        self._wakeup_hooks.append(hook)

    def _attach_telemetry(self, sess: "telemetry.TelemetrySession") -> None:
        # One dispatch per heap pop: a coalesced batch of n events counts
        # n steps through a single hook call.
        steps = sess.registry.counter("sim_steps_total", env=self.label)
        self.add_batch_hook(lambda _t, evs: steps.inc(len(evs)))
        registry = sess.registry
        label = self.label

        def count_wakeup(process: Process) -> None:
            registry.counter(
                "sim_process_wakeups_total", env=label, process=process.name
            ).inc()

        self.add_wakeup_hook(count_wakeup)

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeouts(self, delay: float, values: Iterable[Any]) -> List[Timeout]:
        """Create one timeout per value, all firing ``delay`` from now.

        The group is coalesced into a single heap entry (one push, one
        pop, one batch-hook dispatch) instead of one entry per timeout —
        the cheap way to fan a burst of same-timestamp work into the
        event loop. Events fire in ``values`` order.
        """
        events = [Timeout(self, delay, v, _defer=True) for v in values]  # repro: noqa[PERF001] - the batch API's return value
        self._schedule_batch(events, delay=delay)
        return events

    def process(self, generator: ProcGen, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    def _schedule_batch(self, events: Sequence[Event], delay: float = 0.0) -> None:
        """Schedule same-timestamp ``events`` as one coalesced heap entry.

        The events must already carry their outcome (``_set_ok`` /
        deferred :class:`Timeout`); they are applied in sequence order
        under a single pop, with batch hooks dispatched once for the
        whole group.
        """
        if not events:
            return
        if len(events) == 1:
            self._schedule(events[0], delay)
            return
        heapq.heappush(
            self._heap, (self._now + delay, next(self._seq), tuple(events))
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else _INFINITY

    def step(self) -> None:
        """Process the next heap entry; raises if the queue is empty.

        An entry is a single event or a coalesced same-timestamp batch;
        batch members are applied in their scheduling order, so behaviour
        is identical to n individually scheduled events — minus n-1 heap
        operations and the per-event hook dispatches.
        """
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _, payload = heapq.heappop(self._heap)
        self._now = when
        events = payload if type(payload) is tuple else (payload,)
        if self._batch_hooks:
            for hook in self._batch_hooks:
                hook(when, events)
        step_hooks = self._step_hooks
        for event in events:
            if step_hooks:
                for hook in step_hooks:
                    hook(when, event)
            callbacks, event.callbacks = event.callbacks, None
            if callbacks:
                for cb in callbacks:
                    cb(event)
            if not event._ok and not event._defused:
                # An unhandled failed event (nobody waited on it) is an
                # error — mirrors SimPy semantics so silent failures can't
                # hide.
                if not callbacks:
                    raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a time, or an event
        (run until it fires, returning its value).
        """
        stop_at = _INFINITY
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} is in the past (now={self._now})"
                )

        while self._heap:
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > stop_at:
                self._now = stop_at
                break
            self.step()
        else:
            if stop_at is not _INFINITY:
                self._now = stop_at

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError("run() ended before the awaited event fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        return None
