"""The simulation environment: clock + event heap + run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro import telemetry
from repro.analysis import sanitizer as _sanitizer
from repro.errors import SimulationError
from repro.simcore.events import AllOf, AnyOf, Event, Timeout
from repro.simcore.process import ProcGen, Process

_INFINITY = float("inf")

StepHook = Callable[[float, Event], None]
WakeupHook = Callable[[Process], None]


class Environment:
    """Owns the simulation clock and executes scheduled events in order.

    Events scheduled at equal times are processed in FIFO scheduling order
    (a monotonically increasing sequence number breaks ties), which makes
    simulations deterministic.

    *Step hooks* run after every processed event with ``(time, event)``;
    *wakeup hooks* run whenever a process is resumed. Both lists are empty
    unless something registers (the check is a falsy-list test per event).
    When a :mod:`repro.telemetry` session is active at construction time,
    hooks that count steps and per-process wakeups into the session's
    metrics registry are attached automatically; ``label`` names this
    environment in those metrics.
    """

    def __init__(self, initial_time: float = 0.0, label: str = "env") -> None:
        self._now = float(initial_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self.label = label
        self._step_hooks: List[StepHook] = []
        self._wakeup_hooks: List[WakeupHook] = []
        sess = telemetry.session()
        if sess is not None:
            self._attach_telemetry(sess)
        if _sanitizer.enabled():
            # DES invariant checks (event-time monotonicity) ride the same
            # step-hook API the telemetry layer uses.
            _sanitizer.EnvironmentMonitor(self.label).attach(self)

    # -- hooks ---------------------------------------------------------------

    def add_step_hook(self, hook: StepHook) -> None:
        """Call ``hook(time, event)`` after every processed event."""
        self._step_hooks.append(hook)

    def add_wakeup_hook(self, hook: WakeupHook) -> None:
        """Call ``hook(process)`` whenever a process is stepped."""
        self._wakeup_hooks.append(hook)

    def _attach_telemetry(self, sess: "telemetry.TelemetrySession") -> None:
        steps = sess.registry.counter("sim_steps_total", env=self.label)
        self.add_step_hook(lambda _t, _e: steps.inc())
        registry = sess.registry
        label = self.label

        def count_wakeup(process: Process) -> None:
            registry.counter(
                "sim_process_wakeups_total", env=label, process=process.name
            ).inc()

        self.add_wakeup_hook(count_wakeup)

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcGen, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else _INFINITY

    def step(self) -> None:
        """Process exactly one event; raises if the queue is empty."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        if self._step_hooks:
            for hook in self._step_hooks:
                hook(when, event)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(event)
        if not event._ok and not event._defused:
            # An unhandled failed event (nobody waited on it) is an error —
            # mirrors SimPy semantics so silent failures can't hide.
            if not callbacks:
                raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a time, or an event
        (run until it fires, returning its value).
        """
        stop_at = _INFINITY
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} is in the past (now={self._now})"
                )

        while self._heap:
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > stop_at:
                self._now = stop_at
                break
            self.step()
        else:
            if stop_at is not _INFINITY:
                self._now = stop_at

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError("run() ended before the awaited event fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        return None
