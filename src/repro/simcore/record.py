"""Structured trace recording for simulations.

Experiments attach a :class:`Trace` to their simulations to collect typed
rows (time, category, fields) which benchmark harnesses then aggregate into
the paper's tables and figure series.

``Trace(max_events=N)`` turns the log into a ring buffer keeping the N
most recent rows, so open-ended simulations cannot grow memory without
bound; evictions are counted in :attr:`Trace.dropped` and, when a
:mod:`repro.telemetry` session is active, in its
``trace_events_dropped_total`` counter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro import telemetry


@dataclass(frozen=True)
class TraceEvent:
    """One recorded observation."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Trace:
    """An append-only log of :class:`TraceEvent` rows with simple queries.

    With ``max_events`` set, the oldest rows are evicted past the bound
    (ring-buffer semantics); queries then see only the retained window.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self._events: "deque[TraceEvent] | List[TraceEvent]" = (
            deque(maxlen=max_events) if max_events is not None else []
        )
        self.dropped = 0

    def record(self, time: float, category: str, **fields: Any) -> TraceEvent:
        """Append one observation and return it (may evict the oldest)."""
        ev = TraceEvent(time=time, category=category, fields=dict(fields))
        if self.max_events is not None and len(self._events) == self.max_events:
            self.dropped += 1
            sess = telemetry.session()
            if sess is not None:
                sess.registry.counter("trace_events_dropped_total").inc()
        self._events.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def select(self, category: str, **match: Any) -> List[TraceEvent]:
        """All events in ``category`` whose fields match ``match``."""
        out = []
        for ev in self._events:
            if ev.category != category:
                continue
            if all(ev.fields.get(k) == v for k, v in match.items()):
                out.append(ev)
        return out

    def last(self, category: str) -> Optional[TraceEvent]:
        """Most recent event in ``category``, or ``None``."""
        for ev in reversed(self._events):
            if ev.category == category:
                return ev
        return None

    def series(self, category: str, x: str, y: str) -> List[tuple]:
        """Extract an (x, y) series from a category's fields."""
        return [(ev.fields[x], ev.fields[y]) for ev in self.select(category)]

    def sum(self, category: str, key: str) -> float:
        """Sum a numeric field over a category."""
        return float(sum(ev.fields[key] for ev in self.select(category)))
