"""Discrete-event simulation kernel.

A compact, dependency-free DES in the style of SimPy: an
:class:`~repro.simcore.kernel.Environment` schedules
:class:`~repro.simcore.events.Event` objects on a binary heap and drives
generator-based :class:`~repro.simcore.process.Process` coroutines.

The kernel supports:

* timeouts, one-shot events, and ``all_of`` / ``any_of`` conditions,
* process interruption (used by the HAI platform's preemption protocol),
* capacity-limited :class:`~repro.simcore.resources.Resource` objects and
  producer/consumer :class:`~repro.simcore.resources.Store` queues,
* structured trace recording via :class:`~repro.simcore.record.Trace`.
"""

from repro.simcore.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.simcore.kernel import Environment
from repro.simcore.process import Process
from repro.simcore.resources import Container, Resource, Store
from repro.simcore.record import Trace, TraceEvent

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Store",
    "Timeout",
    "Trace",
    "TraceEvent",
]
