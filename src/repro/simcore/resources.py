"""Shared resources: capacity-limited resources, stores, containers."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from repro.errors import SimulationError
from repro.simcore.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simcore.kernel import Environment


class _Request(Event):
    """Event representing a pending acquisition; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource


class Resource:
    """A resource with ``capacity`` concurrent slots and a FIFO wait queue.

    Usage within a process::

        req = resource.request()
        yield req
        ...  # critical section
        resource.release(req)
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[_Request] = []
        self.queue: Deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> _Request:
        """Ask for a slot; the returned event fires when granted."""
        req = _Request(self.env, self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: _Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        try:
            self.users.remove(request)
        except ValueError:
            # Allow releasing a queued (never-granted) request: cancel it.
            try:
                self.queue.remove(request)
                return
            except ValueError:
                raise SimulationError("release() of a request not held or queued")
        granted: List[_Request] = []
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            granted.append(nxt._set_ok())
        # All grants happen at the same instant: one coalesced heap entry.
        self.env._schedule_batch(granted)


class Store:
    """An unbounded-or-bounded FIFO queue of Python objects.

    ``put`` blocks when the store is full (if a capacity was given);
    ``get`` blocks when it is empty.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires when accepted."""
        ev = Event(self.env)
        if self._getters:
            # Direct handoff wakes getter and putter together: one entry.
            getter = self._getters.popleft()
            self.env._schedule_batch((getter._set_ok(item), ev._set_ok()))
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the returned event fires with it."""
        ev = Event(self.env)
        if self.items:
            if self._putters:
                pev, pitem = self._putters.popleft()
                self.items.append(pitem)
                self.env._schedule_batch(
                    (ev._set_ok(self.items.popleft()), pev._set_ok())
                )
            else:
                ev.succeed(self.items.popleft())
        elif self._putters:
            pev, pitem = self._putters.popleft()
            self.env._schedule_batch((pev._set_ok(), ev._set_ok(pitem)))
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A homogeneous quantity (e.g. bytes of buffer, credits) with level."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under ``capacity``."""
        if amount <= 0:
            raise SimulationError(f"put amount must be positive, got {amount}")
        ev = Event(self.env)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Withdraw ``amount``; fires when available."""
        if amount <= 0:
            raise SimulationError(f"get amount must be positive, got {amount}")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        fired: List[Event] = []
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amt = self._putters[0]
                if self._level + amt <= self.capacity:
                    self._putters.popleft()
                    self._level += amt
                    fired.append(ev._set_ok())
                    progressed = True
            if self._getters:
                ev, amt = self._getters[0]
                if amt <= self._level:
                    self._getters.popleft()
                    self._level -= amt
                    fired.append(ev._set_ok(amt))
                    progressed = True
        # The whole settle cascade happens at one instant: coalesce it.
        self.env._schedule_batch(fired)
