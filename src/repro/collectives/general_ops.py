"""General collective operations beyond allreduce (Section IV).

"HFReduce is versatile and can be applied to any scenario requiring
allreduce, as well as general reduce and broadcast operations."

Executable implementations over NumPy rank buffers (correctness layer)
and closed-form cost extensions of :class:`HFReduceModel` (timing layer):

* reduce — tree-reduce toward one root (one tree pass, no broadcast),
* broadcast — one tree pass down from the root,
* reduce-scatter / allgather — the ZeRO/FSDP building blocks, expressed
  over the same double-tree transport.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.collectives.hfreduce import HFReduceModel
from repro.collectives.primitives import AllreduceConfig, pipeline_latency_factor
from repro.errors import CollectiveError
from repro.network.dbtree import double_binary_tree


def _check(buffers: Sequence[np.ndarray]) -> None:
    if not buffers:
        raise CollectiveError("need at least one rank buffer")
    shape, dtype = buffers[0].shape, buffers[0].dtype
    for b in buffers:
        if b.shape != shape or b.dtype != dtype:
            raise CollectiveError("rank buffers must share shape and dtype")


def reduce_exec(buffers: Sequence[np.ndarray], root: int = 0) -> np.ndarray:
    """Tree-reduce all rank buffers; only ``root`` receives the sum."""
    _check(buffers)
    n = len(buffers)
    if not 0 <= root < n:
        raise CollectiveError(f"root {root} out of range for {n} ranks")
    flat = [np.asarray(b, dtype=np.float32).ravel() for b in buffers]
    if n == 1:
        return flat[0].reshape(buffers[0].shape).copy()
    dt = double_binary_tree(n)
    halves = []
    for tree, sl in ((dt.t1, slice(None, flat[0].size // 2)),
                     (dt.t2, slice(flat[0].size // 2, None))):
        vals = [f[sl].copy() for f in flat]
        order: List[int] = []
        stack = [tree.root]
        while stack:
            r = stack.pop()
            order.append(r)
            stack.extend(tree.children[r])
        for r in reversed(order):
            p = tree.parent[r]
            if p is not None:
                vals[p] = vals[p] + vals[r]
        # Route the tree root's partial to the requested root rank.
        halves.append(vals[tree.root])
    return np.concatenate(halves).reshape(buffers[0].shape)


def broadcast_exec(buffer: np.ndarray, n_ranks: int) -> List[np.ndarray]:
    """Broadcast the root's buffer to every rank via the double tree."""
    if n_ranks < 1:
        raise CollectiveError("n_ranks must be >= 1")
    src = np.asarray(buffer, dtype=np.float32)
    # The tree only determines timing; dataflow-wise every rank receives
    # an identical copy.
    return [src.copy() for _ in range(n_ranks)]


def reduce_scatter_exec(buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Each rank ends with its 1/n shard of the elementwise sum."""
    _check(buffers)
    n = len(buffers)
    total = np.sum([np.asarray(b, dtype=np.float32).ravel() for b in buffers],
                   axis=0)
    shards = np.array_split(total, n)
    return [s.copy() for s in shards]


def allgather_exec(shards: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Every rank ends with the concatenation of all ranks' shards."""
    if not shards:
        raise CollectiveError("need at least one shard")
    full = np.concatenate([np.asarray(s, dtype=np.float32).ravel()
                           for s in shards])
    return [full.copy() for _ in range(len(shards))]


# ---------------------------------------------------------------------------
# Timing extensions
# ---------------------------------------------------------------------------


class GeneralOpsModel:
    """Timing for reduce / broadcast / reduce-scatter / allgather.

    Relative to allreduce's costs: a one-direction tree pass halves the
    inter-node traffic (reduce skips the broadcast-down; broadcast skips
    the reduce-up), and reduce-scatter/allgather move (n-1)/n of the data
    once each.
    """

    def __init__(self, hfreduce: Optional[HFReduceModel] = None) -> None:
        self.hfreduce = hfreduce if hfreduce is not None else HFReduceModel()

    def reduce_bandwidth(self, cfg: AllreduceConfig) -> float:
        """Bytes/s for a rooted reduce (one tree pass)."""
        # Node-local work identical; network moves each byte once (up).
        base = min(self.hfreduce.memory_term(), self.hfreduce.pcie_term())
        if cfg.n_nodes > 1:
            base = min(base, self.hfreduce.node.nic.bw)
        depth = double_binary_tree(max(cfg.n_nodes, 1)).depth
        factor = pipeline_latency_factor(
            depth_hops=depth, n_chunks=cfg.n_chunks,
            chunk_service_time=cfg.chunk_bytes / base,
        )
        return base / factor

    def broadcast_bandwidth(self, cfg: AllreduceConfig) -> float:
        """Bytes/s for a broadcast (one tree pass, no CPU reduction)."""
        node = self.hfreduce.node
        base = node.nic.bw if cfg.n_nodes > 1 else float("inf")
        # In-node fanout: H2D to every GPU through the PCIe fabric.
        base = min(base, self.hfreduce.pcie_term() * 2.0)
        depth = double_binary_tree(max(cfg.n_nodes, 1)).depth
        factor = pipeline_latency_factor(
            depth_hops=depth, n_chunks=cfg.n_chunks,
            chunk_service_time=cfg.chunk_bytes / base,
        )
        return base / factor

    def reduce_scatter_time(self, cfg: AllreduceConfig) -> float:
        """Seconds for a reduce-scatter of ``cfg.nbytes``."""
        n = cfg.world_size
        moved = cfg.nbytes * (n - 1) / n
        return moved / self.reduce_bandwidth(cfg)

    def allgather_time(self, cfg: AllreduceConfig) -> float:
        """Seconds for an allgather producing ``cfg.nbytes`` per rank."""
        n = cfg.world_size
        moved = cfg.nbytes * (n - 1) / n
        return moved / self.broadcast_bandwidth(cfg)
