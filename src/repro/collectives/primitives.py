"""Shared configuration and cost-model primitives for collectives."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CollectiveError
from repro.units import Count, MiB, Scalar, Seconds, us

#: Default pipeline chunk size. 4 MiB balances per-chunk overhead against
#: pipeline depth for the 100-200 MiB gradient buckets typical in training.
CHUNK_BYTES_DEFAULT = 4 * MiB

#: One RDMA hop latency (QM8700 port-to-port plus verbs overhead).
RDMA_HOP_LATENCY = us(6.0)


@dataclass(frozen=True)
class AllreduceConfig:
    """Parameters of one allreduce invocation."""

    nbytes: int
    n_nodes: Count = 1
    gpus_per_node: Count = 8
    chunk_bytes: int = CHUNK_BYTES_DEFAULT
    dtype: str = "fp32"

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise CollectiveError("nbytes must be positive")
        if self.n_nodes < 1:
            raise CollectiveError("n_nodes must be >= 1")
        if self.gpus_per_node < 1:
            raise CollectiveError("gpus_per_node must be >= 1")
        if self.chunk_bytes <= 0:
            raise CollectiveError("chunk_bytes must be positive")

    @property
    def world_size(self) -> Count:
        """Total GPU count."""
        return self.n_nodes * self.gpus_per_node

    @property
    def n_chunks(self) -> Count:
        """Pipeline chunks covering the buffer."""
        return max(1, -(-self.nbytes // self.chunk_bytes))


def ring_transmissions_per_byte(n: int) -> Scalar:
    """PCIe transactions per byte in a ring allreduce over ``n`` GPUs.

    Section IV-B1: each unit of data makes ``2n - 1`` hops, costing
    ``(2n-1)/n`` units of each GPU's bidirectional PCIe bandwidth. HFReduce
    needs exactly 1 (one D2H plus one H2D).
    """
    if n < 2:
        raise CollectiveError("ring needs >= 2 ranks")
    return (2.0 * n - 1.0) / n


def pipeline_latency_factor(depth_hops: Count, n_chunks: Count,
                            per_hop_latency: Seconds = RDMA_HOP_LATENCY,
                            chunk_service_time: Seconds = 0.0) -> Scalar:
    """Throughput divisor from pipeline fill/drain over a tree of depth D.

    A chunked pipeline over D hops completes in (C + D) stages instead of
    C, so sustained bandwidth is scaled by C / (C + D) when the per-hop
    service time dominates; explicit per-hop latency adds on top for
    small chunks.
    """
    if depth_hops < 0 or n_chunks < 1:
        raise CollectiveError("invalid pipeline parameters")
    fill = 1.0 + depth_hops / n_chunks
    if chunk_service_time > 0:
        fill += depth_hops * per_hop_latency / (n_chunks * chunk_service_time)
    return fill
