"""NCCL ring-allreduce model on the PCIe architecture (Section IV-B).

On Fire-Flyer nodes NCCL is throttled by the GPU<->NIC peer-to-peer path:
EPYC Rome/Milan lack chained writes, capping P2P at ~9 GiB/s (Section
IV-D2). A ring over ``n`` GPUs moves each byte through (2n-1)/n units of
every GPU's PCIe bandwidth, so the achievable algorithm bandwidth is
roughly ``p2p_cap * n / (2n - 1)`` — about 4.8 GB/s — before latency.

Each of the 2(n-1) ring steps pays a per-step latency (kernel launch +
network); at 1440 GPUs this halves throughput again, reproducing the
1.6-4.8 GB/s band of Figure 7a.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.collectives.primitives import AllreduceConfig, ring_transmissions_per_byte
from repro.errors import CollectiveError
from repro.hardware.node import NodeSpec, fire_flyer_node
from repro.hardware.pcie import PCIeFabric
from repro.units import BytesPerSec, Scalar, Seconds, as_gBps, us


@dataclass
class NCCLRingModel:
    """Timing/bandwidth model of NCCL ring allreduce on PCIe nodes."""

    node: NodeSpec = field(default_factory=fire_flyer_node)
    #: Per-ring-step latency: kernel launch, proxy progression, and one
    #: network hop. Calibrated against Figure 7a's large-scale tail.
    step_latency: Seconds = us(30.0)
    #: Fraction of GPU compute lost while NCCL reduction kernels run
    #: (Section IV-B2 — HFReduce has none).
    sm_interference: Scalar = 0.05

    def p2p_bandwidth(self) -> BytesPerSec:
        """GPU<->NIC peer-to-peer ceiling on this node (bytes/s)."""
        return PCIeFabric(self.node).gpu_nic_p2p_bandwidth()

    def bandwidth(self, cfg: AllreduceConfig) -> BytesPerSec:
        """Achieved allreduce (algorithm) bandwidth in bytes/s."""
        n = cfg.world_size
        if n < 2:
            raise CollectiveError("NCCL ring model needs >= 2 GPUs")
        transmissions = ring_transmissions_per_byte(n)
        transfer_time = cfg.nbytes * transmissions / self.p2p_bandwidth()
        latency_time = 2.0 * (n - 1) * self.step_latency
        achieved = cfg.nbytes / (transfer_time + latency_time)
        sess = telemetry.session()
        if sess is not None:
            sess.registry.histogram(
                "allreduce_bandwidth_GBps", impl="nccl_ring"
            ).observe(as_gBps(achieved))
        return achieved

    def allreduce_time(self, cfg: AllreduceConfig) -> Seconds:
        """Wall-clock seconds for one allreduce."""
        return cfg.nbytes / self.bandwidth(cfg)
