"""Collective communication: executable algorithms + performance models.

Two complementary layers reproduce HFReduce (Section IV):

* :mod:`repro.collectives.exec_engine` — *executable* collectives over
  NumPy buffers (ring, double binary tree, the full HFReduce datapath).
  These establish algorithmic correctness, bit-for-bit.
* :mod:`repro.collectives.hfreduce` / :mod:`repro.collectives.nccl` —
  *timing models* on the simulated hardware that regenerate the paper's
  bandwidth figures (Figure 7) and the Section IV-D bottleneck analysis.
"""

from repro.collectives.primitives import AllreduceConfig, CHUNK_BYTES_DEFAULT
from repro.collectives.exec_engine import (
    hfreduce_allreduce_exec,
    ring_allreduce_exec,
    tree_allreduce_exec,
)
from repro.collectives.hfreduce import HFReduceModel
from repro.collectives.nccl import NCCLRingModel
from repro.collectives.des_pipeline import DesResult, HFReduceDesSim

__all__ = [
    "AllreduceConfig",
    "CHUNK_BYTES_DEFAULT",
    "DesResult",
    "HFReduceDesSim",
    "HFReduceModel",
    "NCCLRingModel",
    "hfreduce_allreduce_exec",
    "ring_allreduce_exec",
    "tree_allreduce_exec",
]
