"""HFReduce performance model (Section IV).

The model composes three independently derived throughput terms and a
pipeline fill penalty:

* **memory term** — host memory bandwidth divided by the per-byte memory
  operation count (24x plain, 16x with NVLink pre-reduction, 30x without
  GDRCopy); Section IV-D3's own analysis.
* **PCIe term** — the steady-state rate each GPU can sustain for
  simultaneous D2H+H2D through its root port, from
  :class:`~repro.hardware.pcie.PCIeFabric`. The GPU5/6 shared port is the
  binding constraint (~8 GB/s per stream), which is exactly why the paper
  measures "slightly over 8 GB/s" against the 13.3 GB/s memory ceiling.
* **network term** — the double-binary-tree inter-node allreduce moves
  every byte up and down the tree once, so a full-duplex 200 Gbps NIC
  sustains ~12.5 GB/s of allreduce bandwidth.

The pipeline factor models chunked execution over the tree depth
(fill/drain) plus per-hop RDMA latency — the source of the gentle decline
from 8.1 GB/s at 16 GPUs to ~6.3 GB/s at 1440 GPUs in Figure 7a.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import telemetry
from repro.collectives.primitives import (
    AllreduceConfig,
    RDMA_HOP_LATENCY,
    pipeline_latency_factor,
)
from repro.errors import CollectiveError
from repro.hardware.memory import MemorySystem
from repro.hardware.node import NodeSpec, fire_flyer_node
from repro.hardware.pcie import PCIeFabric, Transfer, TransferKind
from repro.network.dbtree import double_binary_tree
from repro.units import BytesPerSec, Seconds, as_gBps


@dataclass
class HFReduceModel:
    """Timing/bandwidth model of HFReduce on a node architecture."""

    node: NodeSpec = field(default_factory=fire_flyer_node)
    nvlink: bool = False
    gdrcopy: bool = True
    #: Extra one-way latency when the double tree's single crossing pair
    #: traverses the inter-zone links (Section III-B).
    cross_zone_hop_latency: Seconds = RDMA_HOP_LATENCY
    #: GPUs per zone before a job must span both zones. Tasks under 128
    #: GPUs are kept zone-local by platform defaults (Figure 7 caption).
    zone_gpu_capacity: int = 4800

    def __post_init__(self) -> None:
        if self.nvlink and not self.node.nvlink_pairs:
            self.node = self.node.with_nvlink()

    # -- component terms ---------------------------------------------------------

    def memory_term(self) -> BytesPerSec:
        """Memory-bound allreduce bandwidth (bytes/s)."""
        return MemorySystem(self.node).hfreduce_ceiling(
            gdrcopy=self.gdrcopy, nvlink=self.nvlink
        )

    def pcie_term(self) -> BytesPerSec:
        """Steady-state per-GPU D2H+H2D rate through the PCIe fabric.

        All GPUs stream both directions at once (pipelined chunks); the
        allreduce advances at the *slowest* GPU's rate. With NVLink, only
        one GPU per pair performs D2H (of pre-reduced data) while both
        receive their H2D half, thinning traffic on the shared port.
        """
        fab = PCIeFabric(self.node)
        transfers = []
        weights_h2d = 0.5 if self.nvlink else 1.0
        for i in range(self.node.gpu_count):
            if not self.nvlink or i % 2 == 0:
                transfers.append(Transfer(f"gpu{i}", TransferKind.D2H))
            transfers.append(Transfer(f"gpu{i}", TransferKind.H2D, weight=weights_h2d))
        rates = fab.rates(transfers)
        # Rate of the allreduce = slowest D2H stream (full-buffer streams).
        d2h_rates = [
            rates[idx]
            for idx, t in enumerate(transfers)
            if t.kind == TransferKind.D2H
        ]
        return min(d2h_rates)

    def network_term(self) -> BytesPerSec:
        """Inter-node tree allreduce bandwidth through one NIC (bytes/s).

        Each byte is sent up and down the tree once; with a full-duplex
        NIC both directions overlap, but interior nodes receive from two
        children while sending to one parent, so the sustained allreduce
        rate is half the NIC line rate.
        """
        return self.node.nic.bw / 2.0

    # -- headline API --------------------------------------------------------------

    def bandwidth(self, cfg: AllreduceConfig) -> BytesPerSec:
        """Achieved allreduce (algorithm) bandwidth in bytes/s."""
        if cfg.gpus_per_node != self.node.gpu_count:
            raise CollectiveError(
                f"config has {cfg.gpus_per_node} GPUs/node, node has "
                f"{self.node.gpu_count}"
            )
        base = min(self.memory_term(), self.pcie_term())
        if cfg.n_nodes > 1:
            base = min(base, self.network_term())
        depth = double_binary_tree(max(cfg.n_nodes, 1)).depth
        chunk_service = cfg.chunk_bytes / base
        factor = pipeline_latency_factor(
            depth_hops=depth,
            n_chunks=cfg.n_chunks,
            chunk_service_time=chunk_service,
        )
        if self.crosses_zones(cfg):
            # One node pair traverses the inter-zone links: one extra hop
            # of fill latency on the critical path.
            factor += self.cross_zone_hop_latency / (cfg.n_chunks * chunk_service)
        achieved = base / factor
        sess = telemetry.session()
        if sess is not None:
            sess.registry.histogram(
                "allreduce_bandwidth_GBps", impl="hfreduce"
            ).observe(as_gBps(achieved))
        return achieved

    def allreduce_time(self, cfg: AllreduceConfig) -> Seconds:
        """Wall-clock seconds for one allreduce."""
        return cfg.nbytes / self.bandwidth(cfg)

    def crosses_zones(self, cfg: AllreduceConfig) -> bool:
        """Whether the job spans both fat-tree zones."""
        return cfg.world_size > self.zone_gpu_capacity

    def breakdown(self, cfg: AllreduceConfig) -> Dict[str, float]:
        """All component terms (bytes/s) for reports and ablations."""
        return {
            "memory": self.memory_term(),
            "pcie": self.pcie_term(),
            "network": self.network_term(),
            "achieved": self.bandwidth(cfg),
        }
