"""Discrete-event simulation of the HFReduce chunk pipeline.

Where :class:`~repro.collectives.hfreduce.HFReduceModel` computes
steady-state bandwidth analytically, this module *simulates* Algorithms 1
and 2 chunk by chunk on the :mod:`repro.simcore` kernel:

1. every GPU streams each chunk D2H through its PCIe path (the shared
   GPU5/6 root port is a shared resource),
2. the CPU reduce-adds the eight arrivals (rate set by the memory system),
3. the reduced chunk runs the double-binary-tree allreduce hop by hop
   (per-hop RDMA latency plus NIC serialization),
4. the result returns H2D.

Stages overlap exactly as the pipelined implementation overlaps them, so
the simulated completion time includes fill/drain effects the analytic
model folds into :func:`~repro.collectives.primitives.pipeline_latency_factor`.
The two are cross-validated in tests and in the
``test_des_vs_analytic`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import telemetry
from repro.collectives.primitives import AllreduceConfig, RDMA_HOP_LATENCY
from repro.errors import CollectiveError
from repro.faults import FaultPlan
from repro.hardware.cpu import CpuReduceModel
from repro.hardware.memory import MemorySystem
from repro.hardware.node import NodeSpec, fire_flyer_node
from repro.hardware.pcie import PCIeFabric, Transfer, TransferKind
from repro.network.dbtree import double_binary_tree, rebuild_double_binary_tree
from repro.simcore import Environment, Resource, Store
from repro.units import BytesPerSec, Seconds, as_gBps, ms, us


@dataclass
class DesResult:
    """Outcome of one simulated allreduce."""

    total_time: Seconds
    nbytes: int
    n_chunks: int
    faults_injected: int = 0  # node losses delivered mid-allreduce
    tree_rebuilds: int = 0  # double-tree reconstructions performed
    final_nodes: int = 0  # surviving tree width (0 = no faults path)

    @property
    def bandwidth(self) -> BytesPerSec:
        """Algorithm bandwidth in bytes/s."""
        return self.nbytes / self.total_time


class HFReduceDesSim:
    """Chunk-level DES of HFReduce on one representative node.

    The node under simulation is the pipeline bottleneck (all nodes run
    the identical schedule); the inter-node phase is represented by the
    critical path through the double binary tree: ``2 * depth`` hops of
    (NIC serialization + RDMA latency) per chunk, overlapped across
    chunks through a NIC resource.
    """

    #: Fixed per-chunk dispatch cost (copy-engine doorbell, kernel-side
    #: bookkeeping, verbs post): the term that penalizes very fine
    #: chunking and gives the chunk-size curve its interior optimum.
    CHUNK_OVERHEAD = us(20.0)

    #: Stall while survivors detect a dead peer and re-form the double
    #: binary tree (timeout detection + reconnect + root handoff). The
    #: pipeline halts inter-node traffic for this long per node loss.
    TREE_REBUILD_TIME = ms(50.0)

    def __init__(self, node: Optional[NodeSpec] = None) -> None:
        self.node = node if node is not None else fire_flyer_node()
        fabric = PCIeFabric(self.node)
        # Steady-state per-GPU rates when all GPUs stream both directions:
        # the same contention model the analytic path uses.
        transfers = []
        for i in range(self.node.gpu_count):
            transfers.append(Transfer(f"gpu{i}", TransferKind.D2H))
            transfers.append(Transfer(f"gpu{i}", TransferKind.H2D))
        rates = fabric.rates(transfers)
        self._d2h_rate: Dict[int, float] = {}
        self._h2d_rate: Dict[int, float] = {}
        for idx, t in enumerate(transfers):
            gpu = int(t.device[3:])
            if t.kind == TransferKind.D2H:
                self._d2h_rate[gpu] = rates[idx]
            else:
                self._h2d_rate[gpu] = rates[idx]
        # CPU reduce throughput: memory-bound output rate for an 8-way add.
        self._reduce_rate = CpuReduceModel(
            self.node.cpu, sockets=self.node.cpu_sockets
        ).reduce_rate(self.node.gpu_count)
        self._nic_rate = self.node.nic.bw / 2.0  # tree up+down per byte

    def run(self, cfg: AllreduceConfig,
            plan: Optional[FaultPlan] = None) -> DesResult:
        """Simulate one allreduce; returns timing.

        ``plan`` injects node losses mid-allreduce (``nic_down``,
        ``gpu_xid``, ``ecc_error``, ``host_hang`` events, times in
        simulated seconds of *this* allreduce): each loss stalls the
        inter-node phase for :attr:`TREE_REBUILD_TIME` while the double
        binary tree is rebuilt over the survivors, after which remaining
        chunks ride the (shallower but narrower) rebuilt tree — the
        paper's HFReduce degraded-continuation behaviour.
        """
        if cfg.gpus_per_node != self.node.gpu_count:
            raise CollectiveError("config GPU count does not match the node")
        env = Environment(label="hfreduce_des")
        n_chunks = cfg.n_chunks
        chunk = cfg.nbytes / n_chunks
        depth = double_binary_tree(max(cfg.n_nodes, 1)).depth

        sess = telemetry.session()
        tracer = sess.tracer if sess is not None else None

        # Mutable tree state shared between the fault driver and the
        # network phase; rebuilt on node loss.
        tree = {
            "depth": depth,
            "nodes": max(cfg.n_nodes, 1),
            "dead": (),  # original ranks lost so far
            "stall_until": 0.0,
            "rebuilds": 0,
            "faults": 0,
        }

        def fault_driver():
            losses = plan.of_kind(
                "nic_down", "gpu_xid", "ecc_error", "host_hang"
            )
            for event in losses:
                delay = event.time - env.now
                if delay > 0:
                    yield env.timeout(delay)
                tree["faults"] += 1
                if tree["nodes"] <= 1:
                    continue  # last node standing: nothing left to rebuild
                # Deterministic victim: the highest still-alive rank.
                victim = max(
                    r for r in range(max(cfg.n_nodes, 1))
                    if r not in tree["dead"]
                )
                tree["dead"] = tree["dead"] + (victim,)
                rebuilt = rebuild_double_binary_tree(
                    max(cfg.n_nodes, 1), tree["dead"]
                )
                tree["nodes"] = rebuilt.n_alive
                tree["depth"] = rebuilt.tree.depth
                tree["stall_until"] = env.now + self.TREE_REBUILD_TIME
                tree["rebuilds"] += 1
                if sess is not None:
                    sess.registry.counter(
                        "faults_injected", kind=event.kind
                    ).inc()
                    sess.registry.histogram(
                        "recovery_time_s", layer="collective"
                    ).observe(self.TREE_REBUILD_TIME)
                    if tracer is not None:
                        tracer.instant(
                            f"fault:{event.kind}", env.now,
                            track="faults/collective", cat="faults",
                            args={"victim_rank": victim,
                                  "nodes_left": tree["nodes"],
                                  "new_depth": tree["depth"]},
                        )

        def mark(stage: str, track: str, t0: float, c: int,
                 async_id: Optional[int] = None) -> None:
            # One finished stage span + one labelled histogram observation.
            dur = env.now - t0
            if tracer is not None:
                tracer.complete(stage, t0, dur, track=track, cat="collectives",
                                args={"chunk": c}, async_id=async_id)
            sess.registry.histogram("hfreduce_stage_s", stage=stage).observe(
                dur, ts=t0 + dur
            )

        reduced: Store = Store(env)  # chunks ready for inter-node phase
        returned: Store = Store(env)  # chunks fully allreduced
        cpu = Resource(env, capacity=1)  # one reduce pipeline
        nic = Resource(env, capacity=1)  # one NIC, serializes sends

        def gpu_d2h(gpu: int, arrivals: Store):
            # Each GPU streams its chunks back-to-back at its fair rate,
            # paying the fixed dispatch cost per chunk.
            for c in range(n_chunks):
                t0 = env.now
                yield env.timeout(
                    chunk / self._d2h_rate[gpu] + self.CHUNK_OVERHEAD
                )
                if sess is not None:
                    mark("d2h", f"hfreduce/gpu{gpu}", t0, c)
                yield arrivals.put((c, gpu))

        # Chunk c is reducible once all GPUs delivered it; track arrivals.
        arrivals: Store = Store(env)
        seen: Dict[int, int] = {}

        def collector():
            while True:
                c, _gpu = yield arrivals.get()
                seen[c] = seen.get(c, 0) + 1
                if seen[c] == self.node.gpu_count:
                    yield reduced.put(c)

        def reducer_and_network():
            for _ in range(n_chunks):
                c = yield reduced.get()
                req = cpu.request()
                yield req
                t0 = env.now
                yield env.timeout(
                    chunk / self._reduce_rate + self.CHUNK_OVERHEAD
                )
                if sess is not None:
                    mark("cpu_reduce", "hfreduce/cpu", t0, c)
                cpu.release(req)
                env.process(network_phase(c))

        def network_phase(c: int):
            # The chunk occupies this node's NIC for its serialization
            # time; the tree transit is store-and-forward per hop (a hop
            # must hold the whole chunk before forwarding), so each chunk
            # additionally rides depth x (service + latency) of pipeline
            # transit. Up and down passes overlap on full-duplex links, so
            # one tree depth of hops covers the round trip. Transits of
            # different chunks overlap (they occupy *other* nodes' NICs),
            # which is why only the NIC serialization is a shared resource
            # here.
            nreq = nic.request()
            yield nreq
            while env.now < tree["stall_until"]:
                # Survivors hold inter-node traffic while the double tree
                # re-forms around the lost rank. Re-checked after each
                # resume: another loss during the stall extends
                # ``stall_until``, and sending against the stale deadline
                # would leak traffic into the new rebuild window.
                yield env.timeout(tree["stall_until"] - env.now)
            t0 = env.now
            yield env.timeout(chunk / self._nic_rate)
            if sess is not None:
                mark("nic_send", "hfreduce/nic", t0, c)
            nic.release(nreq)
            # Chunks already past the NIC ride the tree shape they entered
            # with even if a rebuild lands mid-transit — the paper's
            # degraded-continuation behaviour, so the stale read is the
            # intended semantics.
            if tree["nodes"] > 1:  # repro: noqa[RACE002]
                t0 = env.now
                yield env.timeout(
                    tree["depth"] * (chunk / self._nic_rate + RDMA_HOP_LATENCY)
                )
                if sess is not None:
                    # Tree transits of different chunks overlap: async spans.
                    mark("rdma_tree", "hfreduce/net", t0, c, async_id=c)
            # H2D return to the slowest GPU gates chunk completion.
            slowest = min(self._h2d_rate.values())
            t0 = env.now
            yield env.timeout(chunk / slowest)
            if sess is not None:
                mark("h2d", "hfreduce/h2d", t0, c, async_id=c)
            yield returned.put(c)

        def root():
            for g in range(self.node.gpu_count):
                env.process(gpu_d2h(g, arrivals))
            env.process(collector())
            env.process(reducer_and_network())
            if plan is not None and len(plan):
                env.process(fault_driver())
            for _ in range(n_chunks):
                yield returned.get()
            return env.now

        done = env.process(root())
        total = env.run(until=done)
        result = DesResult(
            total_time=total, nbytes=cfg.nbytes, n_chunks=n_chunks,
            faults_injected=tree["faults"], tree_rebuilds=tree["rebuilds"],
            final_nodes=tree["nodes"] if tree["rebuilds"] else 0,
        )
        if sess is not None:
            if tracer is not None:
                tracer.complete(
                    "allreduce", 0.0, total, track="hfreduce", cat="collectives",
                    args={"bytes": cfg.nbytes, "chunks": n_chunks,
                          "nodes": cfg.n_nodes},
                )
            sess.registry.histogram(
                "allreduce_bandwidth_GBps", impl="hfreduce_des"
            ).observe(as_gBps(result.bandwidth))
        return result
