"""Executable collectives over in-memory rank buffers.

These run the actual algorithms on NumPy arrays — no timing, pure
dataflow — to establish that the communication schedules used by the
performance models compute the right answer:

* :func:`ring_allreduce_exec` — NCCL-style reduce-scatter + allgather ring,
* :func:`tree_allreduce_exec` — double-binary-tree allreduce (Algorithm 2's
  two passes: reduce toward each root, then broadcast back down),
* :func:`hfreduce_allreduce_exec` — the complete HFReduce datapath
  (Algorithm 1 + 2): per-node intra-node CPU reduction, inter-node
  double-tree allreduce of the node sums, then return to every GPU;
  optionally with the NVLink pre-reduction of Section IV-C.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import CollectiveError
from repro.network.dbtree import TreeSpec, double_binary_tree
from repro.numerics.dtypes import codec_for
from repro.numerics.reduce_kernels import reduce_add


def _check_uniform(buffers: Sequence[np.ndarray]) -> None:
    if not buffers:
        raise CollectiveError("need at least one buffer")
    shape, dtype = buffers[0].shape, buffers[0].dtype
    for b in buffers:
        if b.shape != shape or b.dtype != dtype:
            raise CollectiveError("all rank buffers must share shape and dtype")


def ring_allreduce_exec(buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Ring allreduce (reduce-scatter then allgather) on FP32 buffers.

    Returns one reduced array per rank; every rank ends with the full sum.
    """
    _check_uniform(buffers)
    n = len(buffers)
    if n == 1:
        return [buffers[0].copy()]
    length = buffers[0].size
    segs = np.array_split(np.arange(length), n)
    work = [np.array(b, dtype=np.float32, copy=True).ravel() for b in buffers]

    # Reduce-scatter: in step s, rank r sends segment (r - s) to rank r+1.
    for step in range(n - 1):
        updates = []
        for r in range(n):
            seg = segs[(r - step) % n]
            updates.append((r, (r + 1) % n, seg, work[r][seg].copy()))
        for _, dst, seg, data in updates:
            work[dst][seg] += data
    # Allgather: circulate the completed segments.
    for step in range(n - 1):
        updates = []
        for r in range(n):
            seg = segs[(r + 1 - step) % n]
            updates.append(((r + 1) % n, seg, work[r][seg].copy()))
        for dst, seg, data in updates:
            work[dst][seg] = data
    shape = buffers[0].shape
    return [w.reshape(shape) for w in work]


def _tree_reduce_broadcast(values: List[np.ndarray], tree: TreeSpec) -> None:
    """In place: every entry of ``values`` becomes the tree-ordered sum."""
    # Pass 1: children push partial sums toward the root (post-order).
    order: List[int] = []
    stack = [tree.root]
    while stack:
        r = stack.pop()
        order.append(r)
        stack.extend(tree.children[r])
    for r in reversed(order):  # children before parents
        p = tree.parent[r]
        if p is not None:
            values[p] = values[p] + values[r]
    # Pass 2: root broadcasts the total back down (pre-order).
    for r in order:  # parents before children
        for c in tree.children[r]:
            values[c] = values[r].copy()


def tree_allreduce_exec(buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Double-binary-tree allreduce: half the data down each tree."""
    _check_uniform(buffers)
    n = len(buffers)
    flat = [np.array(b, dtype=np.float32, copy=True).ravel() for b in buffers]
    if n == 1:
        return [flat[0].reshape(buffers[0].shape)]
    dt = double_binary_tree(n)
    half = flat[0].size // 2
    lo = [f[:half].copy() for f in flat]
    hi = [f[half:].copy() for f in flat]
    _tree_reduce_broadcast(lo, dt.t1)
    _tree_reduce_broadcast(hi, dt.t2)
    out = []
    for r in range(n):
        out.append(np.concatenate([lo[r], hi[r]]).reshape(buffers[0].shape))
    return out


def hfreduce_allreduce_exec(
    gpu_buffers: Sequence[Sequence[np.ndarray]],
    dtype: str = "fp32",
    nvlink: bool = False,
) -> List[List[np.ndarray]]:
    """Run the full HFReduce datapath on wire-format buffers.

    ``gpu_buffers[node][gpu]`` holds each GPU's gradient in wire format
    (see :func:`repro.numerics.dtypes.codec_for`). Returns the same
    structure with every GPU holding the global reduction.

    With ``nvlink=True``, NVLink-paired GPUs pre-reduce before the D2H
    transfer and the reduced result is returned to one GPU of each pair
    then allgathered over the bridge (Section IV-C) — same answer, half
    the host traffic.
    """
    if not gpu_buffers or not gpu_buffers[0]:
        raise CollectiveError("need at least one node with one GPU")
    codec = codec_for(dtype)
    gpus_per_node = len(gpu_buffers[0])
    for node in gpu_buffers:
        if len(node) != gpus_per_node:
            raise CollectiveError("all nodes must have the same GPU count")
        _check_uniform(node)

    # Step 0 (NVLink only): pairwise pre-reduction on the GPUs.
    staged: List[List[np.ndarray]] = []
    for node in gpu_buffers:
        if nvlink and gpus_per_node % 2 == 0:
            pre = []
            for i in range(0, gpus_per_node, 2):
                pre.append(reduce_add([node[i], node[i + 1]], dtype))
            staged.append(pre)
        else:
            staged.append(list(node))

    # Step 1: intra-node reduction on the CPU (Algorithm 1).
    node_sums_fp32 = [
        codec.decode(reduce_add(bufs, dtype)).astype(np.float32)
        for bufs in staged
    ]

    # Step 2: inter-node double-binary-tree allreduce (Algorithm 2).
    reduced = tree_allreduce_exec(node_sums_fp32)

    # Step 3: H2D return — every GPU receives the encoded global sum.
    out: List[List[np.ndarray]] = []
    for node_idx in range(len(gpu_buffers)):
        wire = codec.encode(reduced[node_idx])
        out.append([wire.copy() for _ in range(gpus_per_node)])
    return out
