"""Unit conventions and conversion helpers.

The library's canonical units are:

* **time** — seconds (floats on the simulation clock)
* **data size** — bytes
* **bandwidth** — bytes per second
* **compute** — FLOPs; rates in FLOP/s
* **power** — watts

The paper mixes GB/s (decimal), GiB/s (binary), Gbps (bits), MiB and TB;
these helpers keep every conversion explicit so constants lifted from the
paper stay auditable.

The type aliases below (:data:`Bytes`, :data:`Seconds`,
:data:`BytesPerSec`, ...) are zero-cost: they are plain ``float``/``int``
at runtime and exist so signatures can declare which unit a quantity
carries. The static dimension checker (:mod:`repro.analysis.dimension`)
reads them to propagate dimensions across call boundaries; see
``docs/ANALYSIS.md`` for the annotation guide.
"""

from __future__ import annotations

# --- dimension-carrying type aliases ---------------------------------------
# Zero-cost annotations consumed by repro.analysis.dimension (DIM001-003).

#: A data size in bytes.
Bytes = float
#: A duration in seconds (simulated or derived).
Seconds = float
#: A bandwidth in bytes per second.
BytesPerSec = float
#: A quantity of floating-point operations.
Flops = float
#: A compute rate in FLOP/s.
FlopsPerSec = float
#: A frequency in 1/s.
Hertz = float
#: A discrete count (chunks, ports, hops, parameters).
Count = int
#: A dimensionless ratio/factor (efficiencies, multipliers, MFU).
Scalar = float

# --- data sizes -------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40
PiB = 1 << 50


def kib(n: float) -> Bytes:
    """Convert KiB to bytes."""
    return n * KiB


def mib(n: float) -> Bytes:
    """Convert MiB to bytes."""
    return n * MiB


def gib(n: float) -> Bytes:
    """Convert GiB to bytes."""
    return n * GiB


def tib(n: float) -> Bytes:
    """Convert TiB to bytes."""
    return n * TiB


# --- bandwidth --------------------------------------------------------------


def gbps(n: float) -> BytesPerSec:
    """Convert gigabits/s (network line rate) to bytes/s."""
    return n * 1e9 / 8.0


def gBps(n: float) -> BytesPerSec:
    """Convert decimal gigabytes/s to bytes/s."""
    return n * GB


def giBps(n: float) -> BytesPerSec:
    """Convert binary gibibytes/s to bytes/s."""
    return n * GiB


def tBps(n: float) -> BytesPerSec:
    """Convert decimal terabytes/s to bytes/s."""
    return n * TB


def as_gBps(bytes_per_s: BytesPerSec) -> Scalar:
    """Express a bytes/s figure in decimal GB/s (for report tables)."""
    return bytes_per_s / GB


def as_giBps(bytes_per_s: BytesPerSec) -> Scalar:
    """Express a bytes/s figure in binary GiB/s (for report tables)."""
    return bytes_per_s / GiB


# --- compute ----------------------------------------------------------------


def tflops(n: float) -> FlopsPerSec:
    """Convert TFLOP/s to FLOP/s."""
    return n * 1e12


def as_tflops(flops: FlopsPerSec) -> Scalar:
    """Express FLOP/s in TFLOP/s."""
    # Dividing by the canonical-unit magnitude erases the dimension by
    # convention; the checker cannot know 1e12 is "the unit" here.
    return flops / 1e12  # repro: noqa[DIM003]


def gflop(n: float) -> Flops:
    """Convert GFLOPs (a work quantity, not a rate) to FLOPs."""
    return n * 1e9


# --- frequency --------------------------------------------------------------


def mhz(n: float) -> Hertz:
    """Convert MHz to Hz."""
    return n * 1e6


def ghz(n: float) -> Hertz:
    """Convert GHz to Hz."""
    return n * 1e9


# --- time -------------------------------------------------------------------

US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


def us(n: float) -> Seconds:
    """Convert microseconds to seconds."""
    return n * US


def ms(n: float) -> Seconds:
    """Convert milliseconds to seconds."""
    return n * MS
