"""Unit conventions and conversion helpers.

The library's canonical units are:

* **time** — seconds (floats on the simulation clock)
* **data size** — bytes
* **bandwidth** — bytes per second
* **compute** — FLOPs; rates in FLOP/s
* **power** — watts

The paper mixes GB/s (decimal), GiB/s (binary), Gbps (bits), MiB and TB;
these helpers keep every conversion explicit so constants lifted from the
paper stay auditable.
"""

from __future__ import annotations

# --- data sizes -------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40
PiB = 1 << 50


def kib(n: float) -> float:
    """Convert KiB to bytes."""
    return n * KiB


def mib(n: float) -> float:
    """Convert MiB to bytes."""
    return n * MiB


def gib(n: float) -> float:
    """Convert GiB to bytes."""
    return n * GiB


def tib(n: float) -> float:
    """Convert TiB to bytes."""
    return n * TiB


# --- bandwidth --------------------------------------------------------------


def gbps(n: float) -> float:
    """Convert gigabits/s (network line rate) to bytes/s."""
    return n * 1e9 / 8.0


def gBps(n: float) -> float:
    """Convert decimal gigabytes/s to bytes/s."""
    return n * GB


def giBps(n: float) -> float:
    """Convert binary gibibytes/s to bytes/s."""
    return n * GiB


def tBps(n: float) -> float:
    """Convert decimal terabytes/s to bytes/s."""
    return n * TB


def as_gBps(bytes_per_s: float) -> float:
    """Express a bytes/s figure in decimal GB/s (for report tables)."""
    return bytes_per_s / GB


def as_giBps(bytes_per_s: float) -> float:
    """Express a bytes/s figure in binary GiB/s (for report tables)."""
    return bytes_per_s / GiB


# --- compute ----------------------------------------------------------------


def tflops(n: float) -> float:
    """Convert TFLOP/s to FLOP/s."""
    return n * 1e12


def as_tflops(flops: float) -> float:
    """Express FLOP/s in TFLOP/s."""
    return flops / 1e12


# --- frequency --------------------------------------------------------------


def mhz(n: float) -> float:
    """Convert MHz to Hz."""
    return n * 1e6


def ghz(n: float) -> float:
    """Convert GHz to Hz."""
    return n * 1e9


# --- time -------------------------------------------------------------------

US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


def us(n: float) -> float:
    """Convert microseconds to seconds."""
    return n * US


def ms(n: float) -> float:
    """Convert milliseconds to seconds."""
    return n * MS
