"""Typed fault events and the deterministic :class:`FaultPlan` schedule.

A plan is a *value*: an immutable, totally-ordered sequence of events.
Ordering is by ``(time, event_id)`` — the id is assigned at construction
in input order, so plans with duplicate timestamps (several failures in
the same flash-cut burst) replay in one stable order, and an empty plan
is a valid (no-op) schedule. ``to_json``/``from_json`` round-trip
byte-identically, which is what the replay certificate and the
hypothesis property tests pin down.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.errors import ReproError


class FaultPlanError(ReproError):
    """Invalid fault plan or event."""


@dataclass(frozen=True)
class FaultEvent:
    """Base fault occurrence: a kind, a time, and a stable id.

    ``event_id`` breaks ties between events at the same timestamp; the
    plan assigns ids in input order when events are created without one
    (``event_id=-1``).
    """

    time: float
    event_id: int = -1

    #: Subclass tag; also the ``kind`` label on injected-fault metrics.
    kind = "fault"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultPlanError(f"event time must be >= 0, got {self.time}")

    @property
    def sort_key(self) -> Tuple[float, int]:
        """Stable total order: time, then assigned id."""
        return (self.time, self.event_id)

    def payload(self) -> Dict[str, object]:
        """JSON-safe field dict (kind included, id excluded)."""
        out: Dict[str, object] = {"kind": self.kind}
        for f in fields(self):
            if f.name != "event_id":
                out[f.name] = getattr(self, f.name)
        return out


@dataclass(frozen=True)
class GpuXid(FaultEvent):
    """A GPU Xid error on one node (Table VI: Xid 63/64/74/79/94/95...)."""

    node: str = ""
    xid: int = 63

    kind = "gpu_xid"


@dataclass(frozen=True)
class EccError(FaultEvent):
    """An uncorrectable memory ECC error on one node (Section VII-C1)."""

    node: str = ""

    kind = "ecc_error"


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """An IB link flash cut: the link drops, then returns (Table VIII)."""

    link: Tuple[str, str] = ("", "")
    duration: float = 30.0

    kind = "link_flap"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration < 0:
            raise FaultPlanError("link flap duration must be >= 0")


@dataclass(frozen=True)
class NicDown(FaultEvent):
    """A node's NIC dies; on single-NIC nodes this kills the task."""

    node: str = ""

    kind = "nic_down"


@dataclass(frozen=True)
class StorageNodeLoss(FaultEvent):
    """A 3FS storage node drops out of its replication chains."""

    node: str = ""

    kind = "storage_node_loss"


@dataclass(frozen=True)
class HostHang(FaultEvent):
    """A host stops responding (hostping failure) for ``duration``."""

    node: str = ""
    duration: float = 120.0

    kind = "host_hang"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration < 0:
            raise FaultPlanError("host hang duration must be >= 0")


#: kind tag -> event class, for deserialization and generators.
FAULT_KINDS: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (GpuXid, EccError, LinkFlap, NicDown, StorageNodeLoss, HostHang)
}


class FaultPlan:
    """An immutable, deterministically-ordered schedule of fault events.

    Events are sorted by ``(time, event_id)``; events arriving without an
    id (``event_id=-1``) are assigned ids in input order *before*
    sorting, so duplicate timestamps keep their submission order and the
    same input always yields the same schedule.
    """

    def __init__(self, events: Sequence[FaultEvent] = (), seed: Optional[int] = None) -> None:
        stamped: List[FaultEvent] = []
        next_id = max(
            (e.event_id for e in events if e.event_id >= 0), default=-1
        ) + 1
        for e in events:
            if not isinstance(e, FaultEvent):
                raise FaultPlanError(f"not a fault event: {e!r}")
            if e.event_id < 0:
                e = replace(e, event_id=next_id)
                next_id += 1
            stamped.append(e)
        ids = [e.event_id for e in stamped]
        if len(set(ids)) != len(ids):
            raise FaultPlanError("duplicate event ids in plan")
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(stamped, key=lambda e: e.sort_key)
        )
        self.seed = seed

    # -- sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __getitem__(self, i: int) -> FaultEvent:
        return self._events[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        span = f"0..{self.horizon():g}s" if self._events else "empty"
        return f"<FaultPlan {len(self._events)} event(s) {span}>"

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The ordered schedule."""
        return self._events

    # -- queries -----------------------------------------------------------------

    def horizon(self) -> float:
        """Time of the last event (0.0 for an empty plan)."""
        return self._events[-1].time if self._events else 0.0

    def of_kind(self, *kinds: str) -> "FaultPlan":
        """Sub-plan with only the named kinds (ids preserved)."""
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise FaultPlanError(f"unknown fault kind(s): {unknown}")
        return FaultPlan([e for e in self._events if e.kind in kinds],
                         seed=self.seed)

    def between(self, start: float, end: float) -> "FaultPlan":
        """Sub-plan of events with ``start <= time < end``."""
        if end < start:
            raise FaultPlanError(f"empty window: end {end} < start {start}")
        return FaultPlan([e for e in self._events if start <= e.time < end],
                         seed=self.seed)

    def counts(self) -> Dict[str, int]:
        """Events per kind, sorted by kind."""
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return dict(sorted(out.items()))

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans; ids are re-assigned in merged time order."""
        merged = sorted(
            list(self._events) + list(other._events), key=lambda e: e.sort_key
        )
        return FaultPlan([replace(e, event_id=-1) for e in merged])

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON rendering (byte-identical for equal plans)."""
        rows = []
        for e in self._events:
            row = e.payload()
            row["event_id"] = e.event_id
            rows.append(row)
        doc: Dict[str, object] = {"events": rows}
        if self.seed is not None:
            doc["seed"] = self.seed
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan serialized by :meth:`to_json`."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid plan JSON: {exc}")
        events: List[FaultEvent] = []
        for row in doc.get("events", []):
            kind = row.pop("kind", None)
            etype = FAULT_KINDS.get(kind)
            if etype is None:
                raise FaultPlanError(f"unknown fault kind {kind!r}")
            if "link" in row:
                row["link"] = tuple(row["link"])
            events.append(etype(**row))
        return cls(events, seed=doc.get("seed"))


def generate_plan(
    seed: int,
    horizon: float,
    rates: Dict[str, float],
    nodes: Sequence[str],
    links: Sequence[Tuple[str, str]] = (),
) -> FaultPlan:
    """Sample a seeded Poisson fault schedule.

    ``rates`` maps fault kinds to mean events per second over
    ``horizon``; arrival times are exponential inter-arrivals from one
    ``random.Random(seed)`` stream consumed in sorted-kind order, so the
    same arguments always produce the identical plan. ``nodes`` (and
    ``links`` for ``link_flap``) are the affected-entity pools, sampled
    from the same stream.
    """
    if horizon <= 0:
        raise FaultPlanError("horizon must be positive")
    if not nodes:
        raise FaultPlanError("generate_plan needs a node pool")
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    for kind in sorted(rates):
        etype = FAULT_KINDS.get(kind)
        if etype is None:
            raise FaultPlanError(f"unknown fault kind {kind!r}")
        rate = rates[kind]
        if rate < 0:
            raise FaultPlanError(f"negative rate for {kind}")
        if rate == 0:
            continue
        if kind == "link_flap" and not links:
            raise FaultPlanError("link_flap rate set but no links given")
        t = rng.expovariate(rate)
        while t < horizon:
            if kind == "link_flap":
                link = links[rng.randrange(len(links))]
                events.append(LinkFlap(time=t, link=link,
                                       duration=rng.uniform(5.0, 60.0)))
            elif kind == "host_hang":
                events.append(HostHang(time=t,
                                       node=nodes[rng.randrange(len(nodes))],
                                       duration=rng.uniform(30.0, 300.0)))
            elif kind == "gpu_xid":
                # Table VI's two dominant codes: NVLink (74) vs app (13/31
                # bucketed as 63 here) — the split matters only as a label.
                xid = 74 if rng.random() < 0.45 else 63
                events.append(GpuXid(time=t,
                                     node=nodes[rng.randrange(len(nodes))],
                                     xid=xid))
            else:
                events.append(etype(time=t,
                                    node=nodes[rng.randrange(len(nodes))]))
            t += rng.expovariate(rate)
    # Sort by time before id assignment so ids follow schedule order.
    events.sort(key=lambda e: e.time)
    return FaultPlan(events, seed=seed)
