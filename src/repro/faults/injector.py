"""Compile a :class:`~repro.faults.plan.FaultPlan` onto a simcore kernel.

The injector owns *when*, handlers own *what*: each registered handler
``handler(event) -> None`` runs at its event's simulated time inside a
dedicated injector process on the target
:class:`~repro.simcore.Environment`. Handlers belong to the layer that
recovers (FlowSim reroute, scheduler requeue, chain repair) — the
injector records what was delivered and how long each recovery took, and
leaves telemetry emission to the recovering layer so this package stays
at the bottom of the layer DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.simcore import Environment

Handler = Callable[[FaultEvent], None]


@dataclass(frozen=True)
class InjectionRecord:
    """One delivered fault and the recovery the handler reported."""

    event: FaultEvent
    injected_at: float
    recovery_time: float = 0.0  # seconds until the layer declared recovery
    handled: bool = True


class FaultInjector:
    """Delivers a plan's events to per-kind handlers on a DES clock.

    Usage::

        injector = FaultInjector(env, plan)
        injector.on("link_flap", fabric_handler)
        injector.on("gpu_xid", scheduler_handler)
        injector.start()
        env.run()

    Events with no registered handler are recorded as unhandled (the
    chaos experiment asserts full coverage). ``report_recovery`` lets a
    handler attribute a recovery duration to the event it is currently
    servicing; the injector stamps it into the :class:`InjectionRecord`.
    """

    def __init__(self, env: Environment, plan: FaultPlan) -> None:
        self.env = env
        self.plan = plan
        self._handlers: Dict[str, List[Handler]] = {}
        self.records: List[InjectionRecord] = []
        self._started = False
        self._pending_recovery: float = 0.0

    def on(self, kind: str, handler: Handler) -> "FaultInjector":
        """Register a handler for one fault kind (chainable)."""
        self._handlers.setdefault(kind, []).append(handler)
        return self

    def report_recovery(self, seconds: float) -> None:
        """Called by a handler: the recovery this event triggered took
        ``seconds`` (simulated)."""
        if seconds < 0:
            raise ReproError("recovery time must be >= 0")
        self._pending_recovery = max(self._pending_recovery, seconds)

    def start(self) -> None:
        """Schedule the plan's events on the environment."""
        if self._started:
            raise ReproError("injector already started")
        self._started = True
        if len(self.plan):
            self.env.process(self._driver(), name="fault_injector")

    def _driver(self):
        for event in self.plan:
            delay = event.time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._deliver(event)
        # A generator with no yield would not be a process; an empty plan
        # never starts the driver at all.
        return None

    def _deliver(self, event: FaultEvent) -> None:
        handlers = self._handlers.get(event.kind, [])
        self._pending_recovery = 0.0
        for handler in handlers:
            handler(event)
        self.records.append(
            InjectionRecord(
                event=event,
                injected_at=self.env.now,
                recovery_time=self._pending_recovery,
                handled=bool(handlers),
            )
        )

    # -- reporting ---------------------------------------------------------------

    def inject_all(self) -> List[InjectionRecord]:
        """Synchronous mode: deliver every event immediately, in order.

        For recovery targets that keep their own clock (the time-sharing
        scheduler, the CRAQ chains) the DES detour adds nothing — the
        handlers advance the target to ``event.time`` themselves.
        """
        if self._started:
            raise ReproError("injector already started")
        self._started = True
        for event in self.plan:
            self._deliver(event)
        return self.records

    def unhandled(self) -> List[FaultEvent]:
        """Events delivered without any registered handler."""
        return [r.event for r in self.records if not r.handled]

    def counts(self) -> Dict[str, int]:
        """Delivered events per kind."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.event.kind] = out.get(r.event.kind, 0) + 1
        return dict(sorted(out.items()))
