"""Deterministic fault injection and recovery (Section VI / VII-C).

The paper's operations story — GPU Xid and ECC errors, IB link flash
cuts, storage-node loss — is answered by cheap *recovery* at every
layer: checkpoint restart, HFReduce degradation, CRAQ chain repair, HAI
task requeue. This package is the cross-layer harness that drives those
recovery paths deterministically:

* :class:`FaultPlan` — a seeded, totally-ordered schedule of typed fault
  events (:class:`GpuXid`, :class:`EccError`, :class:`LinkFlap`,
  :class:`NicDown`, :class:`StorageNodeLoss`, :class:`HostHang`);
* :class:`FaultInjector` — compiles a plan onto a
  :mod:`repro.simcore` kernel and dispatches each event to registered
  per-kind handlers at its simulated time;
* :class:`RetryPolicy` — deterministic retry/timeout/exponential-backoff
  schedule used by client-side recovery paths (3FS reads/writes);
* :func:`weekly_profile` — the paper-calibrated weekly failure mix used
  by the ``chaos`` experiment.

The layer DAG (``[tool.repro.layers]``) restricts this package to
``errors``/``units``/``simcore``: recovery itself — and the telemetry it
emits — lives in the layer that owns the failing subsystem (``network``,
``collectives``, ``hai``, ``fs3``, ``ckpt``); those layers accept a
``FaultPlan`` and react. See ``docs/RELIABILITY.md``.
"""

from repro.faults.backoff import RetryPolicy
from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.plan import (
    FAULT_KINDS,
    EccError,
    FaultEvent,
    FaultPlan,
    GpuXid,
    HostHang,
    LinkFlap,
    NicDown,
    StorageNodeLoss,
    generate_plan,
)
from repro.faults.plan import FaultPlanError
from repro.faults.profiles import WEEK_SECONDS, WEEKLY_RATES, weekly_profile

__all__ = [
    "FAULT_KINDS",
    "EccError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "GpuXid",
    "HostHang",
    "InjectionRecord",
    "LinkFlap",
    "NicDown",
    "RetryPolicy",
    "StorageNodeLoss",
    "WEEK_SECONDS",
    "WEEKLY_RATES",
    "generate_plan",
    "weekly_profile",
]
