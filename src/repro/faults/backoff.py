"""Deterministic retry/timeout/exponential-backoff schedule.

The 3FS client path retries chunk operations against a chain that lost a
replica: wait, poll the cluster manager for a repaired configuration,
try again. Production backoff jitters; here the schedule is a pure
function of its parameters so recovery traces replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ReproError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base * factor**attempt``, capped, bounded.

    ``max_attempts`` counts *retries* (the initial try is free);
    ``deadline`` bounds the cumulative backoff so a dead chain fails the
    operation in bounded time rather than retrying forever.
    """

    base_delay: float = 0.1
    factor: float = 2.0
    max_delay: float = 5.0
    max_attempts: int = 6
    deadline: float = 30.0

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.factor < 1.0:
            raise ReproError("backoff needs base_delay > 0 and factor >= 1")
        if self.max_delay < self.base_delay:
            raise ReproError("max_delay must be >= base_delay")
        if self.max_attempts < 0 or self.deadline <= 0:
            raise ReproError("max_attempts must be >= 0, deadline > 0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped."""
        if attempt < 0:
            raise ReproError("attempt must be >= 0")
        return min(self.base_delay * self.factor ** attempt, self.max_delay)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule, honouring attempts and deadline."""
        spent = 0.0
        for attempt in range(self.max_attempts):
            d = self.delay(attempt)
            if spent + d > self.deadline:
                return
            spent += d
            yield d

    def schedule(self) -> List[float]:
        """The schedule as a list (for logs and tests)."""
        return list(self.delays())

    def total_backoff(self) -> float:
        """Worst-case cumulative waiting before giving up."""
        return sum(self.delays())
