"""The paper's weekly failure mix as a reusable plan generator.

Rates are calibrated from the appendix census at production scale
(10,000 GPUs / 1,250 nodes):

* Table VI/VII — critical GPU Xids (63/64/79/94/95 plus the NVLink
  Xid-74 share) average ~28 events/month and uncorrectable main-memory
  ECC ~9/month;
* Table VII's ``network`` class ~15/month;
* Table VIII — IB flash cuts total ~205 over the observed year
  (~3.9/week);
* storage-node loss and host hangs are the rare tail the ops runbook
  still has to handle (Section VI-B3, VI-C).

The ``chaos`` experiment replays this *cluster-scale* weekly mix onto
its (much smaller) stand-in cluster: the point is exercising every
recovery path under the paper's event mix, not Monte-Carlo accuracy.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan, generate_plan

#: Seconds in the profile's unit week.
WEEK_SECONDS = 7 * 86400.0

#: Paper-calibrated mean events per week at production scale.
WEEKLY_RATES = {
    "gpu_xid": 6.5,  # Table VI/VII critical-Xid classes
    "ecc_error": 2.1,  # Table VII main_memory
    "link_flap": 3.9,  # Table VIII IB flash cuts
    "nic_down": 1.0,  # single-NIC node loses its port
    "storage_node_loss": 0.5,  # 3FS node drops from its chains
    "host_hang": 0.7,  # hostping-detected freezes
}


def weekly_profile(
    seed: int,
    nodes: Sequence[str],
    links: Sequence[Tuple[str, str]],
    weeks: float = 1.0,
    rates: Optional[dict] = None,
) -> FaultPlan:
    """A seeded plan replaying ``weeks`` of the paper's failure mix.

    ``nodes`` and ``links`` are the entities faults land on (the caller's
    simulated cluster); the schedule itself is a pure function of the
    arguments.
    """
    horizon = weeks * WEEK_SECONDS
    per_week = dict(WEEKLY_RATES if rates is None else rates)
    if not links:
        per_week.pop("link_flap", None)  # no fabric to flap
    return generate_plan(
        seed=seed,
        horizon=horizon,
        rates={k: v / WEEK_SECONDS for k, v in per_week.items()},
        nodes=list(nodes),
        links=list(links),
    )
