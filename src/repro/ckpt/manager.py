"""Checkpoint manager: chunked tensor save/load over 3FS (Section VII-A).

"Parameters and optimization states are divided into chunks and written to
3FS using the 3FS batch write API... During the saving process, each
tensor is recorded with its index and the offset within the checkpoint,
which makes the location of tensors more convenient during the loading
process."

Layout under ``{root}/step{N:012d}/``:

* ``blob.{i}`` — fixed-size data chunks of the concatenated tensor bytes,
* ``index`` — JSON: per-tensor name, dtype, shape, offset, length, plus
  the step and total size.

The manager also owns the *policy*: periodic saves every
``interval`` seconds (5 minutes by default), asynchronous staging (the
training loop only pays the D2H copy, modelled as the serialization
here), and recovery that loses at most one interval.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CheckpointError
from repro.fs3.client import FS3Client
from repro.units import MiB


@dataclass(frozen=True)
class TensorRecord:
    """Index entry for one tensor."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    length: int


@dataclass(frozen=True)
class CheckpointMeta:
    """One checkpoint's index."""

    step: int
    total_bytes: int
    tensors: Tuple[TensorRecord, ...]


class CheckpointManager:
    """Saves and loads training state on a 3FS client."""

    def __init__(
        self,
        client: FS3Client,
        root: str = "/checkpoints",
        interval: float = 300.0,
        blob_chunk_bytes: int = 4 * MiB,
    ) -> None:
        if interval <= 0:
            raise CheckpointError("interval must be positive")
        if blob_chunk_bytes <= 0:
            raise CheckpointError("blob_chunk_bytes must be positive")
        self.client = client
        self.root = root.rstrip("/")
        self.interval = interval
        self.blob_chunk_bytes = blob_chunk_bytes
        if not client.exists(self.root):
            client.makedirs(self.root)
        self._last_save_time: Optional[float] = None

    # -- policy -----------------------------------------------------------------

    def should_save(self, now: float) -> bool:
        """Whether the periodic timer has elapsed."""
        if self._last_save_time is None:
            return True
        return now - self._last_save_time >= self.interval

    def max_loss_seconds(self) -> float:
        """Upper bound on lost progress after a crash."""
        return self.interval

    # -- save/load --------------------------------------------------------------

    def _dir(self, step: int) -> str:
        return f"{self.root}/step{step:012d}"

    def save(
        self,
        step: int,
        tensors: Dict[str, np.ndarray],
        now: Optional[float] = None,
    ) -> CheckpointMeta:
        """Write a checkpoint with the 3FS batch write API."""
        if step < 0:
            raise CheckpointError("step must be >= 0")
        if not tensors:
            raise CheckpointError("checkpoint needs at least one tensor")
        records: List[TensorRecord] = []
        payloads: List[bytes] = []
        offset = 0
        for name in sorted(tensors):
            arr = np.ascontiguousarray(tensors[name])
            raw = arr.tobytes()
            records.append(
                TensorRecord(
                    name=name,
                    dtype=str(arr.dtype),
                    shape=tuple(arr.shape),
                    offset=offset,
                    length=len(raw),
                )
            )
            payloads.append(raw)
            offset += len(raw)
        blob = b"".join(payloads)

        directory = self._dir(step)
        if not self.client.exists(directory):
            self.client.makedirs(directory)
        items: Dict[str, bytes] = {}
        cb = self.blob_chunk_bytes
        n_chunks = max(1, -(-len(blob) // cb))
        for i in range(n_chunks):
            items[f"{directory}/blob.{i:06d}"] = blob[i * cb : (i + 1) * cb]
        index = {
            "step": step,
            "total_bytes": len(blob),
            "n_chunks": n_chunks,
            "tensors": [
                {
                    "name": r.name,
                    "dtype": r.dtype,
                    "shape": list(r.shape),
                    "offset": r.offset,
                    "length": r.length,
                }
                for r in records
            ],
        }
        items[f"{directory}/index"] = json.dumps(index).encode()
        self.client.batch_write(items)
        if now is not None:
            self._last_save_time = now
        return CheckpointMeta(
            step=step, total_bytes=len(blob), tensors=tuple(records)
        )

    def read_meta(self, step: int) -> CheckpointMeta:
        """Load a checkpoint's index."""
        directory = self._dir(step)
        try:
            raw = self.client.read_file(f"{directory}/index")
        except Exception as exc:
            raise CheckpointError(f"no checkpoint at step {step}: {exc}")
        index = json.loads(raw)
        records = tuple(
            TensorRecord(
                name=t["name"],
                dtype=t["dtype"],
                shape=tuple(t["shape"]),
                offset=t["offset"],
                length=t["length"],
            )
            for t in index["tensors"]
        )
        return CheckpointMeta(
            step=index["step"], total_bytes=index["total_bytes"], tensors=records
        )

    def load(self, step: int) -> Dict[str, np.ndarray]:
        """Load all tensors of a checkpoint (3FS batch read)."""
        meta = self.read_meta(step)
        directory = self._dir(step)
        n_chunks = max(1, -(-meta.total_bytes // self.blob_chunk_bytes))
        if meta.total_bytes == 0:
            n_chunks = 1
        paths = [f"{directory}/blob.{i:06d}" for i in range(n_chunks)]
        blob = b"".join(self.client.batch_read(paths).values())
        out: Dict[str, np.ndarray] = {}
        for r in meta.tensors:
            raw = blob[r.offset : r.offset + r.length]
            if len(raw) != r.length:
                raise CheckpointError(
                    f"checkpoint step {step} truncated at tensor {r.name!r}"
                )
            out[r.name] = np.frombuffer(raw, dtype=np.dtype(r.dtype)).reshape(r.shape).copy()
        return out

    def load_tensor(self, step: int, name: str) -> np.ndarray:
        """Load a single tensor using its index offset (partial read)."""
        meta = self.read_meta(step)
        rec = next((r for r in meta.tensors if r.name == name), None)
        if rec is None:
            raise CheckpointError(f"tensor {name!r} not in checkpoint {step}")
        directory = self._dir(step)
        cb = self.blob_chunk_bytes
        first = rec.offset // cb
        last = (rec.offset + max(rec.length, 1) - 1) // cb
        paths = [f"{directory}/blob.{i:06d}" for i in range(first, last + 1)]
        blob = b"".join(self.client.batch_read(paths).values())
        start = rec.offset - first * cb
        raw = blob[start : start + rec.length]
        return np.frombuffer(raw, dtype=np.dtype(rec.dtype)).reshape(rec.shape).copy()

    # -- housekeeping --------------------------------------------------------------

    def steps(self) -> List[int]:
        """All checkpointed steps, ascending."""
        names = self.client.listdir(self.root)
        out = []
        for n in names:
            if n.startswith("step"):
                out.append(int(n[4:]))
        return sorted(out)

    def latest_step(self) -> Optional[int]:
        """Most recent checkpointed step."""
        steps = self.steps()
        return steps[-1] if steps else None
