"""DES study of asynchronous checkpoint staging (Section VII-A).

"Parameters and optimization states are asynchronously transferred from
GPU to CPU host memory, with checkpoint saving performed periodically...
periodic saving operations can be completed asynchronously in a matter of
seconds, without impacting the training process."

The simulation runs a training loop on the :mod:`repro.simcore` kernel:
each step computes for ``step_time``; every ``interval`` the checkpoint
path stages state D2H (brief, synchronous with the step boundary) and
then writes to 3FS in the background while training continues. Compare
with a synchronous policy where the write blocks the loop — the paper's
design rationale, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CheckpointError
from repro.simcore import Environment, Resource


@dataclass(frozen=True)
class AsyncCkptStats:
    """Outcome of one training-with-checkpointing simulation."""

    policy: str
    steps: int
    total_time: float
    n_checkpoints: int
    ideal_time: float

    @property
    def overhead_fraction(self) -> float:
        """Extra wall-clock beyond pure training."""
        return self.total_time / self.ideal_time - 1.0


def simulate_checkpointing(
    policy: str,
    n_steps: int = 200,
    step_time: float = 10.0,
    interval: float = 300.0,
    d2h_time: float = 0.5,
    write_time: float = 4.0,
) -> AsyncCkptStats:
    """Run the loop under ``async`` or ``sync`` checkpointing."""
    if policy not in ("async", "sync"):
        raise CheckpointError(f"unknown policy {policy!r}")
    if n_steps < 1 or step_time <= 0 or interval <= 0:
        raise CheckpointError("invalid simulation parameters")
    if d2h_time < 0 or write_time < 0:
        raise CheckpointError("checkpoint costs must be >= 0")

    env = Environment()
    n_ckpts = 0
    # One staging buffer: the next D2H must wait until the previous
    # background write drained it.
    staging = Resource(env, capacity=1)

    def background_write(held) -> "Generator":
        yield env.timeout(write_time)
        staging.release(held)

    def trainer():
        nonlocal n_ckpts
        last_save = 0.0
        for _ in range(n_steps):
            yield env.timeout(step_time)
            if env.now - last_save >= interval:
                last_save = env.now
                n_ckpts += 1
                req = staging.request()
                yield req  # wait for a free staging buffer
                yield env.timeout(d2h_time)  # synchronous D2H copy
                if policy == "async":
                    env.process(background_write(req))
                else:
                    yield env.timeout(write_time)
                    staging.release(req)
        return env.now

    done = env.process(trainer())
    total = env.run(until=done)
    return AsyncCkptStats(
        policy=policy,
        steps=n_steps,
        total_time=total,
        n_checkpoints=n_ckpts,
        ideal_time=n_steps * step_time,
    )


def compare_policies(**kwargs) -> List[AsyncCkptStats]:
    """Both policies with identical parameters."""
    return [simulate_checkpointing(p, **kwargs) for p in ("async", "sync")]
