"""DES study of asynchronous checkpoint staging (Section VII-A).

"Parameters and optimization states are asynchronously transferred from
GPU to CPU host memory, with checkpoint saving performed periodically...
periodic saving operations can be completed asynchronously in a matter of
seconds, without impacting the training process."

The simulation runs a training loop on the :mod:`repro.simcore` kernel:
each step computes for ``step_time``; every ``interval`` the checkpoint
path stages state D2H (brief, synchronous with the step boundary) and
then writes to 3FS in the background while training continues. Compare
with a synchronous policy where the write blocks the loop — the paper's
design rationale, quantified.

:func:`simulate_training` additionally accepts a
:class:`~repro.faults.FaultPlan`: node faults crash the run at the next
step boundary, training rolls back to the last *durable* checkpoint
(async checkpoints only become durable once their background write
lands), pays a restart cost, and requeues — which is how the paper gets
"loss of training progress ... no more than 5 minutes" from frequent
checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import telemetry
from repro.errors import CheckpointError
from repro.faults import FaultPlan
from repro.simcore import Environment, Resource


@dataclass(frozen=True)
class AsyncCkptStats:
    """Outcome of one training-with-checkpointing simulation."""

    policy: str
    steps: int
    total_time: float
    n_checkpoints: int
    ideal_time: float
    failures: int = 0  # crashes delivered from the fault plan
    lost_time: float = 0.0  # step-time redone after rollbacks

    @property
    def overhead_fraction(self) -> float:
        """Extra wall-clock beyond pure training."""
        return self.total_time / self.ideal_time - 1.0

    @property
    def goodput(self) -> float:
        """Useful training time per wall-clock second (1.0 is ideal)."""
        return self.ideal_time / self.total_time


def simulate_training(
    policy: str,
    n_steps: int = 200,
    step_time: float = 10.0,
    interval: float = 300.0,
    d2h_time: float = 0.5,
    write_time: float = 4.0,
    plan: Optional[FaultPlan] = None,
    restart_time: float = 60.0,
) -> AsyncCkptStats:
    """Run the loop under ``async`` or ``sync`` checkpointing.

    With a ``plan``, its node faults (``gpu_xid``, ``ecc_error``,
    ``nic_down``, ``host_hang``) each crash the run at the next step
    boundary: progress rolls back to the last durable checkpoint, the
    redone step-time accrues into ``lost_time``, and the loop resumes
    after ``restart_time``. A sync checkpoint is durable when its write
    returns; an async one only when the background write completes — a
    crash mid-write invalidates the staged state, so the rollback falls
    through to the previous checkpoint.
    """
    if policy not in ("async", "sync"):
        raise CheckpointError(f"unknown policy {policy!r}")
    if n_steps < 1 or step_time <= 0 or interval <= 0:
        raise CheckpointError("invalid simulation parameters")
    if d2h_time < 0 or write_time < 0:
        raise CheckpointError("checkpoint costs must be >= 0")
    if restart_time < 0:
        raise CheckpointError("restart_time must be >= 0")

    pending = (
        list(plan.of_kind("gpu_xid", "ecc_error", "nic_down", "host_hang"))
        if plan is not None else []
    )
    sess = telemetry.session()
    env = Environment()
    n_ckpts = 0
    failures = 0
    lost_time = 0.0
    # One staging buffer: the next D2H must wait until the previous
    # background write drained it.
    staging = Resource(env, capacity=1)
    # durable: steps covered by the newest checkpoint that is safe on
    # 3FS; epoch invalidates in-flight background writes across crashes.
    state = {"durable": 0, "epoch": 0}

    def background_write(held, step: int, epoch: int) -> "Generator":
        yield env.timeout(write_time)
        staging.release(held)
        if state["epoch"] == epoch:
            state["durable"] = step

    def trainer():
        nonlocal n_ckpts, failures, lost_time
        last_save = 0.0
        done_steps = 0
        while done_steps < n_steps:
            yield env.timeout(step_time)
            done_steps += 1
            if pending and pending[0].time <= env.now:
                event = pending.pop(0)
                failures += 1
                state["epoch"] += 1  # staged-but-unwritten state is lost
                lost_steps = done_steps - state["durable"]
                lost = lost_steps * step_time
                lost_time += lost
                done_steps = state["durable"]
                if sess is not None:
                    sess.registry.counter(
                        "faults_injected", kind=event.kind
                    ).inc()
                    sess.registry.histogram(
                        "recovery_time_s", layer="ckpt"
                    ).observe(restart_time + lost)
                    if sess.tracer is not None:
                        sess.tracer.instant(
                            f"fault:{event.kind}", env.now,
                            track="faults/ckpt", cat="faults",
                            args={"lost_steps": lost_steps,
                                  "rollback_to": state["durable"]},
                        )
                yield env.timeout(restart_time)
                last_save = env.now  # restored state counts as saved
                continue
            if env.now - last_save >= interval:
                last_save = env.now
                n_ckpts += 1
                req = staging.request()
                yield req  # wait for a free staging buffer
                yield env.timeout(d2h_time)  # synchronous D2H copy
                if policy == "async":
                    env.process(
                        background_write(req, done_steps, state["epoch"])
                    )
                else:
                    yield env.timeout(write_time)
                    staging.release(req)
                    state["durable"] = done_steps
        return env.now

    done = env.process(trainer())
    total = env.run(until=done)
    return AsyncCkptStats(
        policy=policy,
        steps=n_steps,
        total_time=total,
        n_checkpoints=n_ckpts,
        ideal_time=n_steps * step_time,
        failures=failures,
        lost_time=lost_time,
    )


def compare_policies(**kwargs) -> List[AsyncCkptStats]:
    """Both policies with identical parameters."""
    return [simulate_training(p, **kwargs) for p in ("async", "sync")]
