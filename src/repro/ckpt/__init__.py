"""Checkpoint manager (Section VII-A).

Chunked tensor save/load on 3FS with a per-tensor index, periodic
5-minute snapshots, and bounded-loss crash recovery.
"""

from repro.ckpt.manager import CheckpointManager, CheckpointMeta, TensorRecord
from repro.ckpt.async_sim import (
    AsyncCkptStats,
    compare_policies,
    simulate_training,
)

__all__ = [
    "AsyncCkptStats",
    "CheckpointManager",
    "CheckpointMeta",
    "TensorRecord",
    "compare_policies",
    "simulate_training",
]
