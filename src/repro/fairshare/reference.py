"""Pure-Python reference max-min solver: the readable specification.

This module is the oracle the vectorized and warm-started engines are
property-tested against (``tests/test_fairshare_vectorized.py``,
``tests/test_fairshare_warm.py``). It favours clarity over speed: dicts,
sets, and explicit loops, exactly mirroring the progressive-filling
definition of weighted max-min fairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set

FlowId = Hashable


@dataclass
class Constraint:
    """A shared capacity over a set of flows (a link, port, or bus)."""

    capacity: float
    members: Set[FlowId]
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"constraint {self.name!r} capacity must be > 0")
        self.members = set(self.members)


def maxmin_rates(
    flows: Sequence[FlowId],
    constraints: Sequence[Constraint],
    weights: Optional[Mapping[FlowId, float]] = None,
    demands: Optional[Mapping[FlowId, float]] = None,
) -> Dict[FlowId, float]:
    """Compute weighted max-min fair rates by progressive filling.

    Parameters
    ----------
    flows:
        All flows to allocate. Flows not covered by any constraint (and
        without a demand cap) receive ``inf``.
    constraints:
        Shared capacities. A flow may appear in any number of constraints.
    weights:
        Relative shares; missing entries default to 1.0.
    demands:
        Optional per-flow rate caps (e.g. source application limits),
        modelled as single-flow constraints.

    Returns
    -------
    dict
        Flow id -> allocated rate. Sum of rates through any constraint never
        exceeds its capacity (up to float tolerance).
    """
    w = {f: (weights.get(f, 1.0) if weights else 1.0) for f in flows}
    for f, wt in w.items():
        if wt <= 0:
            raise ValueError(f"flow {f!r} weight must be > 0")

    cons: List[Constraint] = [
        Constraint(capacity=c.capacity, members=set(c.members) & set(flows), name=c.name)
        for c in constraints
    ]
    if demands:
        for f, d in demands.items():
            if f in w:
                cons.append(Constraint(capacity=max(d, 1e-30), members={f}, name=f"demand:{f}"))

    remaining = {c_i: c.capacity for c_i, c in enumerate(cons)}
    active: Set[FlowId] = set(flows)
    rates: Dict[FlowId, float] = {}

    while active:
        # Find the bottleneck: smallest fair-share increment over constraints
        # that still have active members.
        best_ratio = None
        best_idx = None
        for idx, c in enumerate(cons):
            members = c.members & active
            if not members:
                continue
            weight_sum = sum(w[f] for f in members)
            ratio = remaining[idx] / weight_sum
            if best_ratio is None or ratio < best_ratio:
                best_ratio = ratio
                best_idx = idx
        if best_idx is None:
            # Unconstrained flows: infinite rate (caller caps via demands).
            for f in active:
                rates[f] = float("inf")
            break

        bottleneck = cons[best_idx]
        fixed = bottleneck.members & active
        for f in fixed:
            rates[f] = w[f] * best_ratio
        # Charge the fixed flows against every constraint they traverse.
        for idx, c in enumerate(cons):
            used = sum(rates[f] for f in (c.members & fixed))
            remaining[idx] = max(remaining[idx] - used, 0.0)
        active -= fixed

    return rates


def bottleneck_throughput(
    flows: Sequence[FlowId],
    constraints: Sequence[Constraint],
    weights: Optional[Mapping[FlowId, float]] = None,
) -> float:
    """Aggregate throughput of a max-min allocation (convenience helper)."""
    rates = maxmin_rates(flows, constraints, weights)
    return sum(r for r in rates.values() if r != float("inf"))
