"""Weighted max-min fair allocation — the repo's single solver seam.

Three engines share one contract (PR 6 consolidated the entry points that
were previously duplicated across ``repro.fairshare`` and
``repro.network.flows._solve``):

* :func:`~repro.fairshare.reference.maxmin_rates` — pure-Python oracle,
  the readable specification every other engine is tested against;
* :func:`~repro.fairshare.vectorized.solve_cold` — one-shot NumPy solve
  built on the shared :func:`~repro.fairshare.vectorized.progressive_fill`
  kernel;
* :class:`~repro.fairshare.warm.WarmMaxMin` — incremental solver that
  keeps the incidence and fixpoint across flow admit/retire events and
  re-relaxes only the affected connected component.

:func:`solve_maxmin` is the façade: pick an engine by name, keep the
``maxmin_rates`` call contract.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.fairshare.reference import (
    Constraint,
    FlowId,
    bottleneck_throughput,
    maxmin_rates,
)
from repro.fairshare.vectorized import progressive_fill, solve_cold
from repro.fairshare.warm import WarmMaxMin
from repro.perf import PerfCounters

__all__ = [
    "Constraint",
    "FlowId",
    "WarmMaxMin",
    "bottleneck_throughput",
    "maxmin_rates",
    "progressive_fill",
    "solve_cold",
    "solve_maxmin",
]

#: Engines accepted by :func:`solve_maxmin`.
ENGINES = ("reference", "vectorized")


def solve_maxmin(
    flows: Sequence[FlowId],
    constraints: Sequence[Constraint],
    weights: Optional[Mapping[FlowId, float]] = None,
    demands: Optional[Mapping[FlowId, float]] = None,
    *,
    engine: str = "vectorized",
    perf: Optional[PerfCounters] = None,
) -> Dict[FlowId, float]:
    """Weighted max-min rates via the named one-shot engine.

    ``engine="reference"`` runs the pure-Python oracle (no perf
    accounting); ``engine="vectorized"`` runs the NumPy kernel. For
    event-driven incremental use, hold a :class:`WarmMaxMin` instead.
    """
    if engine == "vectorized":
        return solve_cold(flows, constraints, weights, demands, perf=perf)
    if engine == "reference":
        return maxmin_rates(flows, constraints, weights, demands)
    raise ValueError(f"unknown max-min engine {engine!r}; expected one of {ENGINES}")
