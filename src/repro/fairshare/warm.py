"""Warm-started incremental max-min: reuse the previous fixpoint.

:class:`WarmMaxMin` owns the flow×constraint incidence *across* allocation
rounds. Flows are admitted and retired by integer slot; constraints are
integer rows with mutable effective capacity. On :meth:`solve`, only the
connected component(s) of the incidence graph touched since the previous
fixpoint are re-relaxed:

* admit/retire marks the flow's rows *dirty*;
* capacity changes (QoS efficiency shifts, degraded links) mark their row
  dirty;
* solve computes the closure of dirty rows over the bipartite
  constraint↔flow graph (alternating frontier expansion, one ``O(nnz)``
  pass per bipartite hop) and runs the shared
  :func:`~repro.fairshare.vectorized.progressive_fill` kernel on that
  sub-problem only. Rates of untouched components are reused verbatim.

Because the weighted max-min allocation decomposes exactly over connected
components (two flows that share no constraint, transitively, cannot
influence each other's rate), the warm result equals a cold solve of the
full problem — property-tested to ≤1e-9 in
``tests/test_fairshare_warm.py`` (the tolerance covers summation-order
round-off only).

Incidence entries are appended flow-major on admit and logically deleted
on retire; the store compacts itself when more than half the entries are
garbage. All mutation is array slicing — no per-flow dict or set churn —
which is what lets :class:`repro.network.flows.FlowSim` run full-cluster
fluid simulations event by event without rebuilding solver state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.fairshare.vectorized import progressive_fill
from repro.perf import PerfCounters

_MIN_ENTRIES = 1024


def _grown(arr: np.ndarray, need: int) -> np.ndarray:
    """Return ``arr`` or an enlarged copy with capacity >= ``need``."""
    if arr.shape[0] >= need:
        return arr
    new = np.empty(max(need, 2 * arr.shape[0], 64), dtype=arr.dtype)
    new[: arr.shape[0]] = arr
    return new


class WarmMaxMin:
    """Incremental weighted max-min solver over integer slots and rows.

    Typical lifecycle::

        solver = WarmMaxMin()
        row = solver.new_constraint(capacity)
        slot = solver.admit([row, ...], weight=2.0, demand=None)
        rates = solver.solve()          # full first solve
        solver.retire(slot)
        rates = solver.solve()          # re-relaxes only the touched component

    ``solve`` returns the internal rates array indexed by slot — treat it
    as read-only; it is overwritten by subsequent solves.
    """

    def __init__(self) -> None:
        # Constraint rows.
        self._cap = np.empty(0, dtype=np.float64)
        self._m = 0
        # Incidence entries, flow-major append-only (+ logical deletes).
        self._ec = np.empty(0, dtype=np.intp)
        self._ef = np.empty(0, dtype=np.intp)
        self._nnz = 0
        self._garbage = 0
        # Flow slots.
        self._w = np.empty(0, dtype=np.float64)
        self._start = np.empty(0, dtype=np.intp)
        self._count = np.empty(0, dtype=np.intp)
        self._active = np.empty(0, dtype=bool)
        self._rates = np.empty(0, dtype=np.float64)
        self._n = 0
        self._n_active = 0
        # Fixpoint invalidation.
        self._dirty = np.empty(0, dtype=bool)
        self._any_dirty = False
        self._solved = False
        # Scratch buffers for solve()'s affected-component closure,
        # grown in lockstep with rows/slots so the per-event path never
        # allocates (PERF-sweep finding: .copy() per solve).
        self._aff_c = np.empty(0, dtype=bool)
        self._aff_f = np.empty(0, dtype=bool)

    # -- introspection ---------------------------------------------------------

    @property
    def n_flows(self) -> int:
        """Slots ever admitted (including retired ones)."""
        return self._n

    @property
    def n_active(self) -> int:
        """Currently active flows."""
        return self._n_active

    @property
    def n_constraints(self) -> int:
        """Constraint rows ever created (including demand rows)."""
        return self._m

    def rate_of(self, slot: int) -> float:
        """Last solved rate of ``slot`` (stale until :meth:`solve`)."""
        return float(self._rates[slot])

    def is_active(self, slot: int) -> bool:
        """Whether ``slot`` is currently admitted."""
        return bool(self._active[slot])

    # -- constraints -----------------------------------------------------------

    def new_constraint(self, capacity: float) -> int:
        """Allocate a constraint row; returns its id."""
        if capacity <= 0:
            raise ValueError(f"constraint capacity must be > 0, got {capacity}")
        row = self._m
        self._cap = _grown(self._cap, row + 1)
        self._dirty = _grown(self._dirty, row + 1)
        self._aff_c = _grown(self._aff_c, row + 1)
        self._cap[row] = capacity
        self._dirty[row] = False
        self._m = row + 1
        return row

    def set_capacity(self, row: int, capacity: float) -> None:
        """Change a row's effective capacity (marks its component dirty)."""
        if not 0 <= row < self._m:
            raise IndexError(f"unknown constraint row {row}")
        if capacity <= 0:
            raise ValueError(f"constraint capacity must be > 0, got {capacity}")
        if self._cap[row] != capacity:
            self._cap[row] = capacity
            self._dirty[row] = True
            self._any_dirty = True

    def capacity_of(self, row: int) -> float:
        """Current capacity of ``row``."""
        return float(self._cap[row])

    # -- flows -----------------------------------------------------------------

    def admit(
        self,
        rows: Union[Sequence[int], np.ndarray],
        weight: float = 1.0,
        demand: Optional[float] = None,
    ) -> int:
        """Admit a flow traversing ``rows``; returns its slot.

        ``demand`` (a rate cap) becomes a dedicated single-member row, as
        the reference solver models it. ``rows`` must not repeat a row.
        """
        if weight <= 0:
            raise ValueError(f"flow weight must be > 0, got {weight}")
        rows_arr = np.asarray(rows, dtype=np.intp)
        if demand is not None:
            drow = self.new_constraint(max(float(demand), 1e-30))
            rows_arr = np.append(rows_arr, drow)
        k = rows_arr.shape[0]
        if k and (int(rows_arr.max()) >= self._m or int(rows_arr.min()) < 0):
            raise IndexError("admit() references an unknown constraint row")

        slot = self._n
        need = slot + 1
        self._w = _grown(self._w, need)
        self._start = _grown(self._start, need)
        self._count = _grown(self._count, need)
        self._active = _grown(self._active, need)
        self._rates = _grown(self._rates, need)
        self._aff_f = _grown(self._aff_f, need)
        self._w[slot] = weight
        self._start[slot] = self._nnz
        self._count[slot] = k
        self._active[slot] = True
        self._n = need
        self._n_active += 1

        if k:
            end = self._nnz + k
            self._ec = _grown(self._ec, end)
            self._ef = _grown(self._ef, end)
            self._ec[self._nnz:end] = rows_arr
            self._ef[self._nnz:end] = slot
            self._nnz = end
            self._dirty[rows_arr] = True
            self._any_dirty = True
            self._rates[slot] = 0.0
        else:
            # No constraint and no demand: unconstrained from the start.
            self._rates[slot] = np.inf
        return slot

    def retire(self, slot: int) -> None:
        """Retire an active flow; its capacity share returns to its component."""
        if not 0 <= slot < self._n or not self._active[slot]:
            raise ValueError(f"retire() of unknown or inactive slot {slot}")
        self._active[slot] = False
        self._n_active -= 1
        k = int(self._count[slot])
        if k:
            s = int(self._start[slot])
            self._dirty[self._ec[s:s + k]] = True
            self._any_dirty = True
            self._garbage += k

    # -- solving ---------------------------------------------------------------

    def solve(self, perf: Optional[PerfCounters] = None) -> np.ndarray:
        """Rates for all slots (read-only view; inactive slots are stale).

        Returns the cached fixpoint untouched when nothing changed;
        otherwise re-relaxes exactly the dirty components.
        """
        if perf is not None:
            perf.bump("solver_calls")
        if self._solved and not self._any_dirty:
            if perf is not None:
                perf.bump("warm_cache_hits")
            return self._rates
        if self._garbage * 2 > self._nnz and self._nnz > _MIN_ENTRIES:
            self._compact()

        nnz = self._nnz
        n = self._n
        ec = self._ec[:nnz]
        ef = self._ef[:nnz]
        alive = self._active[ef]
        aff_f = self._aff_f[:n]
        if self._solved:
            # Closure of dirty rows over the bipartite incidence graph:
            # alternate constraint->flow and flow->constraint frontiers.
            # Scratch buffers are reused across solves — a .copy() per
            # event was the PERF-sweep's top fairshare allocation.
            aff_c = self._aff_c[: self._m]
            np.copyto(aff_c, self._dirty[: self._m])
            aff_f[:] = False
            ec_a = ec[alive]
            ef_a = ef[alive]
            while True:
                new_f = aff_c[ec_a] & ~aff_f[ef_a]
                if not new_f.any():
                    break
                aff_f[ef_a[new_f]] = True
                new_c = aff_f[ef_a] & ~aff_c[ec_a]
                if not new_c.any():
                    break
                aff_c[ec_a[new_c]] = True
        else:
            np.copyto(aff_f, self._active[:n])

        sub = np.flatnonzero(aff_f)
        if perf is not None:
            perf.bump("warm_solves")
            perf.bump("warm_affected_flows", int(sub.shape[0]))
            perf.bump("warm_active_flows", self._n_active)
        if sub.shape[0]:
            sel = alive & aff_f[ef]
            ec_sel = ec[sel]
            ef_sel = ef[sel]
            sub_rows = np.unique(ec_sel)
            finv = np.empty(n, dtype=np.intp)
            finv[sub] = np.arange(sub.shape[0], dtype=np.intp)
            rates_sub = np.empty(sub.shape[0], dtype=np.float64)
            iterations = progressive_fill(
                np.searchsorted(sub_rows, ec_sel),
                finv[ef_sel],
                self._w[sub],
                self._cap[sub_rows],
                rates_sub,
            )
            if perf is not None:
                perf.bump("solver_iterations", iterations)
            self._rates[sub] = rates_sub
        self._dirty[: self._m] = False
        self._any_dirty = False
        self._solved = True
        return self._rates

    # -- housekeeping ----------------------------------------------------------

    def _compact(self) -> None:
        """Drop retired flows' incidence entries, preserving slot order."""
        nnz = self._nnz
        keep = self._active[self._ef[:nnz]]
        new_ec = self._ec[:nnz][keep]
        new_ef = self._ef[:nnz][keep]
        kept = new_ec.shape[0]
        self._ec = _grown(np.empty(0, dtype=np.intp), max(2 * kept, _MIN_ENTRIES))
        self._ef = _grown(np.empty(0, dtype=np.intp), max(2 * kept, _MIN_ENTRIES))
        self._ec[:kept] = new_ec
        self._ef[:kept] = new_ef
        # Entries stay flow-major contiguous (boolean masking preserves
        # order) and slot starts stay monotone in slot id.
        act = np.flatnonzero(self._active[: self._n])
        counts = self._count[act]
        self._start[act] = np.cumsum(counts) - counts
        self._nnz = kept
        self._garbage = 0
