"""NumPy progressive-filling kernel over a flow×constraint incidence.

The incidence matrix is held as two parallel index arrays (one entry per
membership). :func:`progressive_fill` is the shared allocation kernel: the
cold solver (:func:`solve_cold`) builds the arrays from ``Constraint``
objects per call, while the warm-started engine
(:class:`repro.fairshare.warm.WarmMaxMin`) maintains them incrementally
across admit/retire events and hands the kernel pre-compacted views.

Unlike the original per-round ``bincount`` formulation, the kernel keeps
per-constraint active weight sums, member counts, and remaining capacity
*incrementally*: when a filling round freezes flows, exactly their
incidence entries are charged (``np.subtract.at``), so total charging work
is O(nnz) across the whole solve instead of O(nnz) per round. Per-round
cost is the bottleneck scan (O(m) divide + argmin) plus the frozen flows'
entries.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.fairshare.reference import Constraint, FlowId
from repro.perf import PerfCounters


def progressive_fill(
    ent_cons: np.ndarray,
    ent_flow: np.ndarray,
    weights: np.ndarray,
    capacity: np.ndarray,
    rates: np.ndarray,
) -> int:
    """Weighted max-min progressive filling over an incidence list.

    Parameters
    ----------
    ent_cons, ent_flow:
        Parallel integer arrays: entry ``k`` says flow ``ent_flow[k]`` is a
        member of constraint ``ent_cons[k]``. Entries must be unique per
        (constraint, flow) pair; any order is accepted.
    weights:
        Per-flow positive weights, ``(n,)``.
    capacity:
        Per-constraint positive capacities, ``(m,)``.
    rates:
        Output array ``(n,)``; overwritten with the allocation. Flows that
        appear in no constraint receive ``inf``.

    Returns
    -------
    int
        Number of filling rounds performed.
    """
    n = weights.shape[0]
    m = capacity.shape[0]
    rates[:n] = 0.0
    if n == 0:
        return 0
    if m == 0 or ent_cons.shape[0] == 0:
        rates[:n] = np.inf
        return 0

    weight_sum = np.bincount(ent_cons, weights=weights[ent_flow], minlength=m)
    member_cnt = np.bincount(ent_cons, minlength=m)
    remaining = capacity.astype(np.float64, copy=True)

    # Row-major view: the bottleneck's members are one contiguous slice.
    order = np.argsort(ent_cons, kind="stable")
    ef_row = ent_flow[order]
    indptr = np.searchsorted(ent_cons[order], np.arange(m + 1))
    # Flow-major view: a frozen flow's constraints are one contiguous slice.
    forder = np.argsort(ent_flow, kind="stable")
    fc = ent_cons[forder]
    ff = ent_flow[forder]
    fptr = np.searchsorted(ff, np.arange(n + 1))

    active = np.ones(n, dtype=bool)
    covered = np.zeros(n, dtype=bool)
    covered[ent_flow] = True
    if not covered.all():
        # Flows with no incidence entry are unconstrained from the start.
        rates[~covered] = np.inf
        active &= covered
    n_active = int(active.sum())

    ratio = np.empty(m, dtype=np.float64)
    # Hoisted ufunc-method lookups: resolved per call, not per round.
    subtract_at = np.subtract.at
    iterations = 0
    while n_active:
        iterations += 1
        binding = member_cnt > 0
        if not binding.any():
            rates[active] = np.inf
            break
        np.divide(remaining, weight_sum, out=ratio, where=binding)
        ratio[~binding] = np.inf
        b = int(np.argmin(ratio))
        level = float(ratio[b])
        if level < 0.0:
            # Guard against accumulated charging round-off.
            level = 0.0
        seg = ef_row[indptr[b]:indptr[b + 1]]
        fix = seg[active[seg]]
        rates[fix] = weights[fix] * level
        active[fix] = False
        n_active -= fix.shape[0]
        # Charge the frozen flows against every constraint they traverse:
        # weight sums, member counts, and capacity shrink by their share.
        starts = fptr[fix]
        counts = fptr[fix + 1] - starts
        total = int(counts.sum())
        if total:
            cum = np.cumsum(counts) - counts
            idx = np.repeat(starts - cum, counts) + np.arange(total)
            rows = fc[idx]
            cols = ff[idx]
            subtract_at(weight_sum, rows, weights[cols])
            subtract_at(remaining, rows, rates[cols])
            subtract_at(member_cnt, rows, 1)
            np.maximum(remaining, 0.0, out=remaining)
    return iterations


def solve_cold(
    flows: Sequence[FlowId],
    constraints: Sequence[Constraint],
    weights: Optional[Mapping[FlowId, float]] = None,
    demands: Optional[Mapping[FlowId, float]] = None,
    perf: Optional[PerfCounters] = None,
) -> Dict[FlowId, float]:
    """One-shot NumPy solve; same contract as
    :func:`repro.fairshare.reference.maxmin_rates`.

    Builds the incidence arrays from scratch and runs
    :func:`progressive_fill`. ``perf``, if given, accumulates
    ``solver_calls``, ``solver_iterations``, and ``kernel_s``.
    """
    index: Dict[FlowId, int] = {}
    for f in flows:
        if f not in index:
            index[f] = len(index)
    n = len(index)
    if n == 0:
        return {}

    w = np.ones(n, dtype=np.float64)
    if weights:
        for f, i in index.items():
            w[i] = weights.get(f, 1.0)
    if np.any(w <= 0):
        bad = next(f for f, i in index.items() if w[i] <= 0)
        raise ValueError(f"flow {bad!r} weight must be > 0")

    # Incidence entries: (constraint row, flow column); constraints with no
    # member in this allocation round are dropped (they can never bind).
    ent_cons: list = []
    ent_flow: list = []
    caps: list = []
    for c in constraints:
        members = [index[f] for f in c.members if f in index]
        if not members:
            continue
        row = len(caps)
        caps.append(c.capacity)
        ent_cons.extend([row] * len(members))
        ent_flow.extend(members)
    if demands:
        for f, d in demands.items():
            if f in index:
                row = len(caps)
                caps.append(max(d, 1e-30))
                ent_cons.append(row)
                ent_flow.append(index[f])

    rates = np.empty(n, dtype=np.float64)
    ec = np.asarray(ent_cons, dtype=np.intp)
    ef = np.asarray(ent_flow, dtype=np.intp)
    capacity = np.asarray(caps, dtype=np.float64)
    if perf is not None:
        with perf.timeit("kernel_s"):
            iterations = progressive_fill(ec, ef, w, capacity, rates)
        perf.bump("solver_calls")
        perf.bump("solver_iterations", iterations)
    else:
        progressive_fill(ec, ef, w, capacity, rates)
    return {
        f: (float("inf") if np.isinf(rates[i]) else float(rates[i]))
        for f, i in index.items()
    }
