"""Vectorized reduce-add kernels (HFReduce's intra-node CPU reduction).

The production kernels use AVX; here the same dataflow is expressed with
NumPy: decode each input buffer to FP32, accumulate in FP32 (matching the
wide-accumulator behaviour of the SIMD implementation), and re-encode to
the wire dtype. Accumulation order is fixed (buffer 0, 1, 2, ...), so
results are deterministic across runs — an important property for
debugging gradient divergence at cluster scale.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import CollectiveError
from repro.numerics.dtypes import DTypeCodec, codec_for


def reduce_inplace_fp32(acc: np.ndarray, addend: np.ndarray) -> None:
    """``acc += addend`` in FP32, in place (no temporaries)."""
    if acc.dtype != np.float32:
        raise CollectiveError("accumulator must be float32")
    np.add(acc, addend, out=acc)


def reduce_add(buffers: Sequence[np.ndarray], dtype: str = "fp32") -> np.ndarray:
    """Reduce-add ``buffers`` (wire format) and return the wire-format sum.

    All buffers must share shape and the dtype's wire representation.
    """
    if not buffers:
        raise CollectiveError("reduce_add needs at least one buffer")
    codec = codec_for(dtype)
    shape = buffers[0].shape
    for b in buffers:
        if b.shape != shape:
            raise CollectiveError("reduce_add buffers must share a shape")
        if b.dtype != codec.wire_dtype:
            raise CollectiveError(
                f"buffer dtype {b.dtype} does not match wire dtype "
                f"{codec.wire_dtype} for {dtype!r}"
            )
    acc = codec.decode(buffers[0]).astype(np.float32, copy=True)
    for b in buffers[1:]:
        reduce_inplace_fp32(acc, codec.decode(b))
    return codec.encode(acc)


class ReduceKernel:
    """Stateful chunked reducer mirroring Algorithm 1's inner loop.

    One kernel instance owns the FP32 accumulator for a chunk; GPUs' chunk
    transfers "arrive" via :meth:`accumulate`, and :meth:`finish` re-encodes
    the reduced chunk for the inter-node phase.
    """

    def __init__(self, nelems: int, dtype: str = "fp32") -> None:
        if nelems <= 0:
            raise CollectiveError("nelems must be positive")
        self.codec: DTypeCodec = codec_for(dtype)
        self.dtype = dtype
        self.nelems = nelems
        self._acc = np.zeros(nelems, dtype=np.float32)
        self._count = 0

    @property
    def count(self) -> int:
        """How many buffers have been accumulated."""
        return self._count

    def accumulate(self, wire_buffer: np.ndarray) -> None:
        """Add one GPU's chunk (wire format) into the FP32 accumulator."""
        if wire_buffer.shape != (self.nelems,):
            raise CollectiveError(
                f"expected shape ({self.nelems},), got {wire_buffer.shape}"
            )
        if wire_buffer.dtype != self.codec.wire_dtype:
            raise CollectiveError(
                f"expected wire dtype {self.codec.wire_dtype}, got {wire_buffer.dtype}"
            )
        reduce_inplace_fp32(self._acc, self.codec.decode(wire_buffer))
        self._count += 1

    def accumulate_fp32(self, fp32_buffer: np.ndarray) -> None:
        """Add an already-decoded FP32 buffer (network-received data)."""
        if fp32_buffer.shape != (self.nelems,):
            raise CollectiveError("shape mismatch")
        reduce_inplace_fp32(self._acc, np.asarray(fp32_buffer, dtype=np.float32))
        self._count += 1

    def snapshot_fp32(self) -> np.ndarray:
        """Current FP32 accumulator (copy), for inter-node sends."""
        return self._acc.copy()

    def finish(self) -> np.ndarray:
        """Encode the reduced chunk back to wire format."""
        if self._count == 0:
            raise CollectiveError("finish() before any accumulate()")
        return self.codec.encode(self._acc)

    def reset(self) -> None:
        """Clear the accumulator for reuse on the next chunk."""
        self._acc[:] = 0.0
        self._count = 0
