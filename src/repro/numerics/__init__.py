"""Executable numeric kernels for the HFReduce datapath.

HFReduce performs its reductions on the host CPU with SIMD instructions and
"supports FP32 / FP16 / BF16 / FP8 datatypes" (Section IV-D1). NumPy has no
BF16 or FP8, so this package provides:

* bit-exact BF16 and FP8 (E4M3 / E5M2) encode/decode on NumPy arrays,
* vectorized reduce-add kernels that accumulate in FP32 (as a SIMD
  implementation would) and re-encode to the wire dtype,
* chunk splitting/pipelining helpers matching Algorithm 1's structure.

These run for real — correctness of the collective algorithms is tested on
them, while the performance figures come from the timing models in
:mod:`repro.collectives`.
"""

from repro.numerics.dtypes import (
    DTypeCodec,
    bf16_decode,
    bf16_encode,
    codec_for,
    fp8e4m3_decode,
    fp8e4m3_encode,
    fp8e5m2_decode,
    fp8e5m2_encode,
)
from repro.numerics.reduce_kernels import (
    ReduceKernel,
    reduce_add,
    reduce_inplace_fp32,
)
from repro.numerics.chunking import chunk_views, iter_chunks, num_chunks

__all__ = [
    "DTypeCodec",
    "ReduceKernel",
    "bf16_decode",
    "bf16_encode",
    "chunk_views",
    "codec_for",
    "fp8e4m3_decode",
    "fp8e4m3_encode",
    "fp8e5m2_decode",
    "fp8e5m2_encode",
    "iter_chunks",
    "num_chunks",
    "reduce_add",
    "reduce_inplace_fp32",
]
