"""BF16 and FP8 codecs built on NumPy bit manipulation.

Wire formats:

* **BF16** — the top 16 bits of an IEEE-754 float32, with round-to-nearest-
  even on encode. Stored as ``uint16``.
* **FP8 E4M3** — 1 sign / 4 exponent (bias 7) / 3 mantissa bits; no
  infinities; ``S.1111.111`` is NaN; max finite 448. Stored as ``uint8``.
* **FP8 E5M2** — 1 sign / 5 exponent (bias 15) / 2 mantissa; IEEE-like with
  infinities and NaNs; max finite 57344. Stored as ``uint8``.

FP8 encoding uses exact nearest-value rounding against the decoded code
table (256 entries), which is both simple and provably round-trip exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.errors import CollectiveError

# ---------------------------------------------------------------------------
# BF16
# ---------------------------------------------------------------------------


def bf16_encode(x: np.ndarray) -> np.ndarray:
    """Encode float32 -> bf16 (uint16) with round-to-nearest-even."""
    f = np.ascontiguousarray(x, dtype=np.float32)
    bits = f.view(np.uint32)
    # RNE: add 0x7FFF + lsb of the surviving bits, then truncate.
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    out = (rounded >> np.uint32(16)).astype(np.uint16)
    # NaNs must stay NaNs (rounding could carry into the exponent).
    nan_mask = np.isnan(f)
    if nan_mask.any():
        out = np.where(nan_mask, np.uint16(0x7FC0), out)
    return out


def bf16_decode(x: np.ndarray) -> np.ndarray:
    """Decode bf16 (uint16) -> float32."""
    u = np.ascontiguousarray(x, dtype=np.uint16)
    return (u.astype(np.uint32) << np.uint32(16)).view(np.float32)


# ---------------------------------------------------------------------------
# FP8 code tables
# ---------------------------------------------------------------------------


def _fp8_table(exp_bits: int, man_bits: int, bias: int, ieee_specials: bool) -> np.ndarray:
    """Decoded float32 value of every uint8 code."""
    codes = np.arange(256, dtype=np.uint32)
    sign = np.where(codes & 0x80, -1.0, 1.0).astype(np.float64)
    exp_mask = (1 << exp_bits) - 1
    man_mask = (1 << man_bits) - 1
    e = (codes >> man_bits) & exp_mask
    m = codes & man_mask
    vals = np.empty(256, dtype=np.float64)
    subnormal = e == 0
    vals[subnormal] = (
        m[subnormal].astype(np.float64) / (1 << man_bits) * 2.0 ** (1 - bias)
    )
    normal = ~subnormal
    vals[normal] = (1.0 + m[normal].astype(np.float64) / (1 << man_bits)) * np.exp2(
        e[normal].astype(np.float64) - bias
    )
    vals *= sign
    if ieee_specials:
        top = e == exp_mask
        vals[top & (m == 0)] = np.inf * sign[top & (m == 0)]
        vals[top & (m != 0)] = np.nan
    else:
        # E4M3: only S.1111.111 is NaN; other top-exponent codes are finite.
        vals[(e == exp_mask) & (m == man_mask)] = np.nan
    return vals.astype(np.float32)


_E4M3_TABLE = _fp8_table(exp_bits=4, man_bits=3, bias=7, ieee_specials=False)
_E5M2_TABLE = _fp8_table(exp_bits=5, man_bits=2, bias=15, ieee_specials=True)


def _fp8_encode(x: np.ndarray, table: np.ndarray, nan_code: int) -> np.ndarray:
    """Nearest-value encode against a 256-entry code table."""
    f = np.ascontiguousarray(x, dtype=np.float32)
    finite_codes = np.where(np.isfinite(table))[0]
    finite_vals = table[finite_codes]
    order = np.argsort(finite_vals, kind="stable")
    sorted_vals = finite_vals[order]
    sorted_codes = finite_codes[order]

    clipped = np.clip(f, sorted_vals[0], sorted_vals[-1])
    idx = np.searchsorted(sorted_vals, clipped)
    idx = np.clip(idx, 1, len(sorted_vals) - 1)
    left = sorted_vals[idx - 1]
    right = sorted_vals[idx]
    pick_left = (clipped - left) <= (right - clipped)
    best = np.where(pick_left, idx - 1, idx)
    out = sorted_codes[best].astype(np.uint8)
    out = np.where(np.isnan(f), np.uint8(nan_code), out)
    return out


def fp8e4m3_encode(x: np.ndarray) -> np.ndarray:
    """Encode float32 -> FP8 E4M3 (uint8), saturating to +-448."""
    return _fp8_encode(x, _E4M3_TABLE, nan_code=0x7F)


def fp8e4m3_decode(x: np.ndarray) -> np.ndarray:
    """Decode FP8 E4M3 (uint8) -> float32."""
    return _E4M3_TABLE[np.ascontiguousarray(x, dtype=np.uint8)]


def fp8e5m2_encode(x: np.ndarray) -> np.ndarray:
    """Encode float32 -> FP8 E5M2 (uint8), saturating to +-57344."""
    f = np.asarray(x, dtype=np.float32)
    out = _fp8_encode(f, _E5M2_TABLE, nan_code=0x7F)
    # Preserve infinities (the table search clips them to max finite).
    pos_inf = np.isposinf(f)
    neg_inf = np.isneginf(f)
    if pos_inf.any() or neg_inf.any():
        out = np.where(pos_inf, np.uint8(0x7C), out)
        out = np.where(neg_inf, np.uint8(0xFC), out)
    return out


def fp8e5m2_decode(x: np.ndarray) -> np.ndarray:
    """Decode FP8 E5M2 (uint8) -> float32."""
    return _E5M2_TABLE[np.ascontiguousarray(x, dtype=np.uint8)]


# ---------------------------------------------------------------------------
# Codec registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DTypeCodec:
    """Uniform encode/decode interface for HFReduce-supported dtypes."""

    name: str
    wire_dtype: np.dtype
    itemsize: int
    encode: Callable[[np.ndarray], np.ndarray]
    decode: Callable[[np.ndarray], np.ndarray]


def _identity32(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float32)


def _fp16_encode(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float32).astype(np.float16)


def _fp16_decode(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float16).astype(np.float32)


_CODECS: Dict[str, DTypeCodec] = {
    "fp32": DTypeCodec("fp32", np.dtype(np.float32), 4, _identity32, _identity32),
    "fp16": DTypeCodec("fp16", np.dtype(np.float16), 2, _fp16_encode, _fp16_decode),
    "bf16": DTypeCodec("bf16", np.dtype(np.uint16), 2, bf16_encode, bf16_decode),
    "fp8e4m3": DTypeCodec("fp8e4m3", np.dtype(np.uint8), 1, fp8e4m3_encode, fp8e4m3_decode),
    "fp8e5m2": DTypeCodec("fp8e5m2", np.dtype(np.uint8), 1, fp8e5m2_encode, fp8e5m2_decode),
}
_CODECS["fp8"] = _CODECS["fp8e4m3"]  # paper says "FP8"; E4M3 is the training format


def codec_for(dtype: str) -> DTypeCodec:
    """Look up the codec for a dtype name (``fp32/fp16/bf16/fp8[e4m3|e5m2]``)."""
    try:
        return _CODECS[dtype]
    except KeyError:
        raise CollectiveError(
            f"unsupported dtype {dtype!r}; supported: {sorted(_CODECS)}"
        )
