"""Chunk splitting for pipelined transfers (Algorithm 1, line 1).

HFReduce splits gradient buffers into fixed-size chunks so that D2H
transfer, CPU reduction, inter-node allreduce, and H2D return can overlap
in a pipeline. These helpers produce deterministic chunk boundaries shared
by the executable kernels and the timing models.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import CollectiveError


def num_chunks(nbytes: int, chunk_bytes: int) -> int:
    """Number of chunks covering ``nbytes``."""
    if nbytes < 0:
        raise CollectiveError("nbytes must be >= 0")
    if chunk_bytes <= 0:
        raise CollectiveError("chunk_bytes must be positive")
    return max(1, -(-nbytes // chunk_bytes))


def iter_chunks(nbytes: int, chunk_bytes: int) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(index, offset, length)`` byte ranges covering ``nbytes``."""
    n = num_chunks(nbytes, chunk_bytes)
    for i in range(n):
        off = i * chunk_bytes
        yield i, off, min(chunk_bytes, nbytes - off)


def chunk_views(array: np.ndarray, chunk_elems: int) -> List[np.ndarray]:
    """Split a 1-D array into views of at most ``chunk_elems`` elements.

    Views, not copies — mirroring zero-copy chunking of a pinned buffer.
    """
    if array.ndim != 1:
        raise CollectiveError("chunk_views requires a 1-D array")
    if chunk_elems <= 0:
        raise CollectiveError("chunk_elems must be positive")
    return [array[i : i + chunk_elems] for i in range(0, len(array), chunk_elems)] or [
        array[0:0]
    ]
