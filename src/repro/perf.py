"""Lightweight performance instrumentation: counters + wall-time accumulators.

The flow engine (and anything else on a hot path) records *counters*
(solver iterations, rate recomputes, memo hits, events) and *timers*
(accumulated wall seconds per labelled section) into a
:class:`PerfCounters` instance. :class:`~repro.network.flows.FlowSim`
exposes its own instance as ``FlowSim.stats``.

Since the telemetry layer landed, :class:`PerfCounters` is a thin façade
over :class:`repro.telemetry.MetricsRegistry` — each named counter/timer is
a registry :class:`~repro.telemetry.metrics.Counter` — so the same data
model backs both. The ``counters`` / ``timings`` dict views, ``snapshot``,
``report``, and the process-global aggregate are unchanged. While a
telemetry session is active, every record is additionally mirrored into the
session's registry under ``perf.<name>`` so ``--metrics-out`` captures the
engine profile alongside the simulation metrics.

A process-global aggregate can additionally be enabled (``perf.enable()``)
so that a whole experiment run — which may construct many simulators —
reports one combined profile; ``python -m repro.experiments --perf``
uses this. Mirroring is a couple of dict operations per record and is off
by default, so instrumentation stays cheap enough to leave permanently
enabled on the hot path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry


class PerfCounters:
    """A named bag of integer counters and float second-accumulators.

    Counters and timings live in two private
    :class:`~repro.telemetry.MetricsRegistry` namespaces (so a timer and a
    counter may share a name, as ``run_s``-style callers expect).
    """

    __slots__ = ("_counters", "_timings", "_mirror_sess", "_mirror")

    def __init__(self) -> None:
        self._counters = MetricsRegistry()
        self._timings = MetricsRegistry()
        self._mirror_sess: object = None
        self._mirror: Dict[str, object] = {}

    def _mirror_counter(self, name: str):
        """The session-registry ``perf.<name>`` counter, or None.

        Registry lookups sort labels and hash a composite key; at one
        mirror write per engine event that lookup dominates the cost of
        instrumentation, so handles are cached per (session, name) and
        the cache dropped whenever the active session changes.
        """
        sess = telemetry.session()
        if sess is None:
            return None
        if sess is not self._mirror_sess:
            self._mirror_sess = sess
            self._mirror = {}
        handle = self._mirror.get(name)
        if handle is None:
            handle = self._mirror[name] = sess.registry.counter("perf." + name)
        return handle

    # -- recording -------------------------------------------------------------

    def bump(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self._counters.counter(name).inc(n)
        if self is not GLOBAL:
            if _collect_global:
                GLOBAL.bump(name, n)
            mirror = self._mirror_counter(name)
            if mirror is not None:
                mirror.inc(n)

    def add_time(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to timer ``name``."""
        self._timings.counter(name).inc(seconds)
        if self is not GLOBAL:
            if _collect_global:
                GLOBAL.add_time(name, seconds)
            mirror = self._mirror_counter(name)
            if mirror is not None:
                mirror.inc(seconds)

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Context manager accumulating wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    # -- reading ---------------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        """Current counter values by name."""
        return {m.name: int(m.value) for m in self._counters.metrics()}

    @property
    def timings(self) -> Dict[str, float]:
        """Accumulated seconds by timer name."""
        return {m.name: float(m.value) for m in self._timings.metrics()}

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of the current counters and timings."""
        return {"counters": self.counters, "timings_s": self.timings}

    def reset(self) -> None:
        """Zero all counters and timers."""
        self._counters = MetricsRegistry()
        self._timings = MetricsRegistry()

    def report(self) -> str:
        """Human-readable profile table (column width fits the names)."""
        counters = self.counters
        timings = self.timings
        lines = []
        width = max(
            [len(n) for n in counters] + [len(n) for n in timings] + [24]
        )
        if counters:
            lines.append("perf counters:")
            for name in sorted(counters):
                lines.append(f"  {name:<{width}} {counters[name]:>12}")
        if timings:
            lines.append("perf timings:")
            for name in sorted(timings):
                lines.append(f"  {name:<{width}} {timings[name]:>12.6f} s")
        if not lines:
            lines.append("perf: (nothing recorded)")
        return "\n".join(lines)


#: Process-wide aggregate; only collects while :func:`enable` is in effect.
GLOBAL = PerfCounters()
_collect_global = False


def enable(reset: bool = True) -> None:
    """Start mirroring every :class:`PerfCounters` record into ``GLOBAL``."""
    global _collect_global
    if reset:
        GLOBAL.reset()
    _collect_global = True


def disable() -> None:
    """Stop global collection (instance-local stats keep recording)."""
    global _collect_global
    _collect_global = False


def is_enabled() -> bool:
    """Whether global aggregation is active."""
    return _collect_global


def report() -> str:
    """Render the global aggregate profile."""
    return GLOBAL.report()
