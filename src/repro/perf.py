"""Lightweight performance instrumentation: counters + wall-time accumulators.

The flow engine (and anything else on a hot path) records *counters*
(solver iterations, rate recomputes, memo hits, events) and *timers*
(accumulated wall seconds per labelled section) into a
:class:`PerfCounters` instance. :class:`~repro.network.flows.FlowSim`
exposes its own instance as ``FlowSim.stats``.

A process-global aggregate can additionally be enabled (``perf.enable()``)
so that a whole experiment run — which may construct many simulators —
reports one combined profile; ``python -m repro.experiments --perf``
uses this. Mirroring into the global aggregate is a couple of dict
operations per record and is off by default, so instrumentation stays
cheap enough to leave permanently enabled on the hot path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PerfCounters:
    """A named bag of integer counters and float second-accumulators."""

    __slots__ = ("counters", "timings")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timings: Dict[str, float] = {}

    # -- recording -------------------------------------------------------------

    def bump(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n
        if _collect_global and self is not GLOBAL:
            GLOBAL.bump(name, n)

    def add_time(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to timer ``name``."""
        self.timings[name] = self.timings.get(name, 0.0) + seconds
        if _collect_global and self is not GLOBAL:
            GLOBAL.add_time(name, seconds)

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Context manager accumulating wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    # -- reading ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of the current counters and timings."""
        return {"counters": dict(self.counters), "timings_s": dict(self.timings)}

    def reset(self) -> None:
        """Zero all counters and timers."""
        self.counters.clear()
        self.timings.clear()

    def report(self) -> str:
        """Human-readable profile table."""
        lines = ["perf counters:"]
        if not self.counters and not self.timings:
            lines.append("  (nothing recorded)")
        for name in sorted(self.counters):
            lines.append(f"  {name:<24} {self.counters[name]:>12}")
        if self.timings:
            lines.append("perf timings:")
            for name in sorted(self.timings):
                lines.append(f"  {name:<24} {self.timings[name]:>12.6f} s")
        return "\n".join(lines)


#: Process-wide aggregate; only collects while :func:`enable` is in effect.
GLOBAL = PerfCounters()
_collect_global = False


def enable(reset: bool = True) -> None:
    """Start mirroring every :class:`PerfCounters` record into ``GLOBAL``."""
    global _collect_global
    if reset:
        GLOBAL.reset()
    _collect_global = True


def disable() -> None:
    """Stop global collection (instance-local stats keep recording)."""
    global _collect_global
    _collect_global = False


def is_enabled() -> bool:
    """Whether global aggregation is active."""
    return _collect_global


def report() -> str:
    """Render the global aggregate profile."""
    return GLOBAL.report()
