"""Lightweight performance instrumentation: counters + wall-time accumulators.

The flow engine (and anything else on a hot path) records *counters*
(solver iterations, rate recomputes, memo hits, events) and *timers*
(accumulated wall seconds per labelled section) into a
:class:`PerfCounters` instance. :class:`~repro.network.flows.FlowSim`
exposes its own instance as ``FlowSim.stats``.

Since the telemetry layer landed, :class:`PerfCounters` is a thin façade
over :class:`repro.telemetry.MetricsRegistry` — each named counter/timer is
a registry :class:`~repro.telemetry.metrics.Counter` — so the same data
model backs both. The ``counters`` / ``timings`` dict views, ``snapshot``,
``report``, and the process-global aggregate are unchanged. While a
telemetry session is active, every record is additionally mirrored into the
session's registry under ``perf.<name>`` so ``--metrics-out`` captures the
engine profile alongside the simulation metrics.

A process-global aggregate can additionally be enabled (``perf.enable()``)
so that a whole experiment run — which may construct many simulators —
reports one combined profile; ``python -m repro.experiments --perf``
uses this. Mirroring is a couple of dict operations per record and is off
by default, so instrumentation stays cheap enough to leave permanently
enabled on the hot path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry


class _Span:
    """Reusable plain context manager timing one named section.

    The ``@contextmanager`` version (:meth:`PerfCounters.timeit`) builds a
    generator plus a ``_GeneratorContextManager`` per ``with`` — measurable
    on per-event paths. A :class:`_Span` is created once per name (see
    :meth:`PerfCounters.span`) and re-entered for free. Not re-entrant:
    nested ``with`` on the *same* span clobbers its start time; nest
    different names or fall back to :meth:`~PerfCounters.timeit`.
    """

    __slots__ = ("_perf", "_name", "_t0")

    def __init__(self, perf: "PerfCounters", name: str) -> None:
        self._perf = perf
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._perf.add_time(self._name, time.perf_counter() - self._t0)


class PerfCounters:
    """A named bag of integer counters and float second-accumulators.

    Counters and timings live in two private
    :class:`~repro.telemetry.MetricsRegistry` namespaces (so a timer and a
    counter may share a name, as ``run_s``-style callers expect).

    Registry lookups sort labels and hash a composite key per call; at
    one ``bump`` per engine event that lookup dominates instrumentation
    cost, so counter/timer handles are cached per name (PERF-sweep
    finding; the mirror path had the same cache from the start).
    """

    __slots__ = ("_counters", "_timings", "_mirror_sess", "_mirror",
                 "_ctr_handles", "_tmr_handles", "_spans")

    def __init__(self) -> None:
        self._counters = MetricsRegistry()
        self._timings = MetricsRegistry()
        self._mirror_sess: object = None
        self._mirror: Dict[str, object] = {}
        self._ctr_handles: Dict[str, object] = {}
        self._tmr_handles: Dict[str, object] = {}
        self._spans: Dict[str, _Span] = {}

    def _mirror_counter(self, name: str):
        """The session-registry ``perf.<name>`` counter, or None.

        Registry lookups sort labels and hash a composite key; at one
        mirror write per engine event that lookup dominates the cost of
        instrumentation, so handles are cached per (session, name) and
        the cache dropped whenever the active session changes.
        """
        sess = telemetry.session()
        if sess is None:
            return None
        if sess is not self._mirror_sess:
            self._mirror_sess = sess
            self._mirror = {}  # repro: noqa[PERF001] - session swap only
        handle = self._mirror.get(name)
        if handle is None:
            handle = self._mirror[name] = sess.registry.counter("perf." + name)
        return handle

    # -- recording -------------------------------------------------------------

    def bump(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        handle = self._ctr_handles.get(name)
        if handle is None:
            handle = self._ctr_handles[name] = self._counters.counter(name)
        handle.inc(n)
        if self is not GLOBAL:
            if _collect_global:
                GLOBAL.bump(name, n)
            mirror = self._mirror_counter(name)
            if mirror is not None:
                mirror.inc(n)

    def add_time(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to timer ``name``."""
        handle = self._tmr_handles.get(name)
        if handle is None:
            handle = self._tmr_handles[name] = self._timings.counter(name)
        handle.inc(seconds)
        if self is not GLOBAL:
            if _collect_global:
                GLOBAL.add_time(name, seconds)
            mirror = self._mirror_counter(name)
            if mirror is not None:
                mirror.inc(seconds)

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Context manager accumulating wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def span(self, name: str) -> _Span:
        """A cached reusable timing context for ``name``.

        Hot loops hoist ``span = stats.span("solve_s")`` once and enter
        the same object per event; see :class:`_Span` for the
        non-reentrancy caveat.
        """
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = _Span(self, name)
        return span

    # -- reading ---------------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        """Current counter values by name."""
        return {m.name: int(m.value) for m in self._counters.metrics()}

    @property
    def timings(self) -> Dict[str, float]:
        """Accumulated seconds by timer name."""
        return {m.name: float(m.value) for m in self._timings.metrics()}

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of the current counters and timings."""
        return {"counters": self.counters, "timings_s": self.timings}

    def reset(self) -> None:
        """Zero all counters and timers."""
        self._counters = MetricsRegistry()
        self._timings = MetricsRegistry()
        # Cached handles point into the discarded registries.
        self._ctr_handles.clear()
        self._tmr_handles.clear()

    def report(self) -> str:
        """Human-readable profile table (column width fits the names)."""
        counters = self.counters
        timings = self.timings
        lines = []
        width = max(
            [len(n) for n in counters] + [len(n) for n in timings] + [24]
        )
        if counters:
            lines.append("perf counters:")
            for name in sorted(counters):
                lines.append(f"  {name:<{width}} {counters[name]:>12}")
        if timings:
            lines.append("perf timings:")
            for name in sorted(timings):
                lines.append(f"  {name:<{width}} {timings[name]:>12.6f} s")
        if not lines:
            lines.append("perf: (nothing recorded)")
        return "\n".join(lines)


def unix_timestamp() -> float:
    """Wall-clock epoch seconds for run metadata (benchmark JSON, reports).

    Lives here because :mod:`repro.perf` is the sanctioned wall-clock
    layer (rule DET002): simulated components must derive time from their
    environment's clock, but run *artifacts* legitimately stamp real
    time, and routing those reads through one audited helper keeps the
    exemption surface minimal.
    """
    return time.time()


#: Process-wide aggregate; only collects while :func:`enable` is in effect.
GLOBAL = PerfCounters()
_collect_global = False


def enable(reset: bool = True) -> None:
    """Start mirroring every :class:`PerfCounters` record into ``GLOBAL``."""
    global _collect_global
    if reset:
        GLOBAL.reset()
    _collect_global = True


def disable() -> None:
    """Stop global collection (instance-local stats keep recording)."""
    global _collect_global
    _collect_global = False


def is_enabled() -> bool:
    """Whether global aggregation is active."""
    return _collect_global


def report() -> str:
    """Render the global aggregate profile."""
    return GLOBAL.report()
